//! Flash memory interconnect models for the Networked SSD reproduction.
//!
//! Everything between the flash channel controllers and the flash chips:
//!
//! * [`signals`] — the ONFI NV-DDR4 pin inventory (Table I) and the pin
//!   accounting behind packetization's ~2× effective bandwidth.
//! * [`ControlPacket`] / [`DataPacket`] — the packet formats of Fig 8 with a
//!   bit-level header codec and overhead accounting.
//! * [`BusParams`], [`DedicatedBus`], [`PacketBus`] — wire-timing models for
//!   the conventional dedicated-signal interface (Fig 6a) and the packetized
//!   interface (Fig 6b).
//! * [`Omnibus`] — the 2D bus topology of pnSSD (§V): h-channels,
//!   v-channels, controller ownership, path diversity, and the Fig 11
//!   control-plane handshake accounting.
//! * [`Mesh`] — the NoSSD 2D mesh comparison topology with XY routing.
//!
//! ```
//! use nssd_flash::FlashCommand;
//! use nssd_interconnect::{BusParams, DedicatedBus, PacketBus};
//!
//! let base = DedicatedBus::new(BusParams::table2_baseline());
//! let pssd = PacketBus::new(BusParams::table2_pssd());
//! // Packetization roughly halves the page read-out occupancy.
//! let conventional = base.read_occupancy(16 * 1024);
//! let packetized = pssd.control_packet_time(FlashCommand::ReadPage)
//!     + pssd.read_out_time(16 * 1024);
//! assert!(packetized < conventional.scale(11, 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod mesh;
mod omnibus;
mod packet;
pub mod signals;
mod timing_diagram;

pub use bus::{BusParams, DedicatedBus, PacketBus};
pub use mesh::{LinkId, Mesh, MeshEndpoint, MeshParams};
pub use omnibus::{ControllerRole, IoPath, Omnibus};
pub use packet::{ControlPacket, DataPacket, PacketError, PacketType, DATA_LEN_FLITS, FLIT_BYTES};
pub use timing_diagram::{Phase, PhaseDriver, TimingDiagram};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn data_packet_prefix_roundtrip(bytes in 1u32..=64 * 1024) {
            let p = DataPacket::new(bytes);
            let enc = p.encode_prefix();
            prop_assert_eq!(DataPacket::decode_prefix(&enc).unwrap(), p);
        }

        #[test]
        fn control_header_roundtrip(t in 0u8..4, c in 0u8..4, r in 0u8..4) {
            let p = ControlPacket { command_flits: t, column_flits: c, row_flits: r };
            let enc = p.encode_header().unwrap();
            prop_assert_eq!(ControlPacket::decode_header(enc).unwrap(), p);
        }

        #[test]
        fn payload_time_monotone_in_bytes(
            mt in 1u64..4000,
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
            a in 0u64..100_000,
            b in 0u64..100_000,
        ) {
            let bus = BusParams::new(mt, width);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bus.payload_time(lo) <= bus.payload_time(hi));
        }

        #[test]
        fn doubling_width_never_slower(bytes in 1u64..1_000_000) {
            let narrow = BusParams::new(1000, 8);
            let wide = BusParams::new(1000, 16);
            prop_assert!(wide.payload_time(bytes) <= narrow.payload_time(bytes));
        }

        #[test]
        fn mesh_routes_are_valid_walks(
            rows in 1u32..9,
            cols in 1u32..9,
            r1 in 0u32..9,
            c1 in 0u32..9,
            ctrl in 0u32..9,
        ) {
            let m = Mesh::new(rows, cols);
            let chip = MeshEndpoint::Chip { row: r1 % rows, col: c1 % cols };
            let ctrl_ep = MeshEndpoint::Controller(ctrl % cols);
            for (s, d) in [(ctrl_ep, chip), (chip, ctrl_ep)] {
                let path = m.route(s, d);
                prop_assert!(path.len() <= (rows + cols) as usize + 1);
                for l in &path {
                    prop_assert!(l.0 < m.link_count());
                }
                // No link repeats on a minimal XY route.
                let mut sorted: Vec<_> = path.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len());
            }
        }

        #[test]
        fn omnibus_every_way_has_a_v_channel(channels in 1u32..16, ways in 1u32..16) {
            let t = Omnibus::new(channels, ways, channels);
            for w in 0..ways {
                let v = t.v_channel_of_way(w);
                prop_assert!(v < t.v_channel_count());
                let owner = t.controller_of_v_channel(v);
                prop_assert!(owner < channels);
            }
        }

        #[test]
        fn omnibus_handshake_bounded(channels in 1u32..16, src in 0u32..16, dst in 0u32..16, v in 0u32..16) {
            let t = Omnibus::new(channels, channels, channels);
            let (src, dst, v) = (src % channels, dst % channels, v % t.v_channel_count());
            let msgs = t.f2f_handshake_messages(src, dst, v);
            prop_assert!(msgs <= 4);
            prop_assert_eq!(msgs % 2, 0);
        }
    }
}
