//! Bus timing models: dedicated-signal (conventional) and packetized.
//!
//! Both models turn "move N bytes / issue command X" into wire time for a
//! channel of a given width and transfer rate. Table II's channels run at
//! 1000 MT/s: 8-bit wide for baseSSD and the pnSSD h/v channels, 16-bit wide
//! for pSSD's fattened channel.

use nssd_flash::FlashCommand;
use nssd_sim::SimTime;

use crate::{ControlPacket, DataPacket, FLIT_BYTES};

/// Functional decomposition of one bus transaction: the bytes the caller
/// asked to move versus the protocol bytes wrapped around them.
///
/// The two timing backends disagree on overhead and wire time — that is
/// the point of packetization — but they must agree exactly on payload.
/// The oracle's cross-backend equivalence check compares these probes
/// instead of timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferProbe {
    /// Useful bytes moved (page data).
    pub payload_bytes: u64,
    /// Protocol bytes around them: command/address cycles on the dedicated
    /// interface, packet headers and CRCs on the packetized one.
    pub overhead_bytes: u64,
}

impl TransferProbe {
    /// Total bytes the transaction puts on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.overhead_bytes
    }

    /// Fraction of wire bytes that are payload.
    pub fn efficiency(&self) -> f64 {
        self.payload_bytes as f64 / self.total_bytes() as f64
    }
}

/// Physical parameters of one bus/channel.
///
/// # Examples
///
/// ```
/// use nssd_interconnect::BusParams;
/// use nssd_sim::SimTime;
///
/// let bus = BusParams::new(1000, 8);
/// // 16 KB at 1 GT/s × 8 bits = 16384 ns.
/// assert_eq!(bus.payload_time(16 * 1024), SimTime::from_ns(16_384));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusParams {
    /// Transfer rate in mega-transfers per second (beats/µs).
    pub mega_transfers: u64,
    /// Data width in bits per beat.
    pub width_bits: u32,
}

impl BusParams {
    /// Creates bus parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(mega_transfers: u64, width_bits: u32) -> Self {
        assert!(mega_transfers > 0, "transfer rate must be nonzero");
        assert!(width_bits > 0, "bus width must be nonzero");
        BusParams {
            mega_transfers,
            width_bits,
        }
    }

    /// Table II baseline: 1000 MT/s, 8-bit.
    pub const fn table2_baseline() -> Self {
        BusParams {
            mega_transfers: 1000,
            width_bits: 8,
        }
    }

    /// Table II pSSD: 1000 MT/s, 16-bit (control pins repurposed).
    pub const fn table2_pssd() -> Self {
        BusParams {
            mega_transfers: 1000,
            width_bits: 16,
        }
    }

    /// Bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.mega_transfers * 1_000_000 * self.width_bits as u64 / 8
    }

    /// Time to move `beats` transfer beats, rounded up to whole ns.
    fn beats_time(&self, beats: u64) -> SimTime {
        // beat time = 1000/MT ns; total = beats * 1000 / MT, rounded up.
        let ns = (beats as u128 * 1000).div_ceil(self.mega_transfers as u128);
        SimTime::from_ns(ns as u64)
    }

    /// Wire time for `bytes` of raw payload on this bus.
    pub fn payload_time(&self, bytes: u64) -> SimTime {
        let beats = (bytes * 8).div_ceil(self.width_bits as u64);
        self.beats_time(beats)
    }

    /// Wire time for `flits` 8-bit flits (a 16-bit bus moves two per beat).
    pub fn flit_time(&self, flits: u64) -> SimTime {
        let beats = (flits * 8).div_ceil(self.width_bits as u64);
        self.beats_time(beats)
    }
}

/// Timing model for the conventional dedicated-signal interface (Fig 6a).
///
/// Command and address bytes are latched one per beat over `DQ` under
/// CLE/ALE; page data moves one byte per beat under `RE`/`DQS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedicatedBus {
    /// Physical bus parameters (8-bit `DQ` in any real ONFI part).
    pub params: BusParams,
}

impl DedicatedBus {
    /// Creates the conventional bus model.
    pub fn new(params: BusParams) -> Self {
        DedicatedBus { params }
    }

    /// Wire time for the command+address phase of `cmd`.
    pub fn command_phase(&self, cmd: FlashCommand) -> SimTime {
        self.params.payload_time(cmd.total_cycle_bytes() as u64)
    }

    /// Wire time for a `bytes`-long data phase (page in or out).
    pub fn data_phase(&self, bytes: u64) -> SimTime {
        self.params.payload_time(bytes)
    }

    /// Total channel occupancy of a full read transaction's bus phases
    /// (command+address, then data-out), excluding the array time between
    /// them during which the channel is free.
    pub fn read_occupancy(&self, page_bytes: u64) -> SimTime {
        self.command_phase(FlashCommand::ReadPage) + self.data_phase(page_bytes)
    }

    /// Total channel occupancy of a full program transaction's bus phases
    /// (command+address+data-in).
    pub fn program_occupancy(&self, page_bytes: u64) -> SimTime {
        self.command_phase(FlashCommand::ProgramPage) + self.data_phase(page_bytes)
    }

    /// Functional probe of a full read transaction: what moves, and what of
    /// it is protocol.
    pub fn probe_read(&self, page_bytes: u64) -> TransferProbe {
        TransferProbe {
            payload_bytes: page_bytes,
            overhead_bytes: FlashCommand::ReadPage.total_cycle_bytes() as u64,
        }
    }

    /// Functional probe of a full program transaction.
    pub fn probe_program(&self, page_bytes: u64) -> TransferProbe {
        TransferProbe {
            payload_bytes: page_bytes,
            overhead_bytes: FlashCommand::ProgramPage.total_cycle_bytes() as u64,
        }
    }
}

/// Timing model for the packetized interface (Fig 6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketBus {
    /// Physical bus parameters (16-bit for pSSD, 8-bit for pnSSD channels).
    pub params: BusParams,
}

impl PacketBus {
    /// Creates the packetized bus model.
    pub fn new(params: BusParams) -> Self {
        PacketBus { params }
    }

    /// Wire time of the control packet encoding `cmd`.
    pub fn control_packet_time(&self, cmd: FlashCommand) -> SimTime {
        self.params
            .flit_time(ControlPacket::for_command(cmd).flits())
    }

    /// Wire time of a data packet carrying `payload_bytes`.
    pub fn data_packet_time(&self, payload_bytes: u32) -> SimTime {
        self.params
            .flit_time(DataPacket::new(payload_bytes).flits())
    }

    /// Channel occupancy to read a page out of the page register: the
    /// *read data transfer* control packet followed by the data packet.
    pub fn read_out_time(&self, payload_bytes: u32) -> SimTime {
        self.control_packet_time(FlashCommand::ReadDataTransfer)
            + self.data_packet_time(payload_bytes)
    }

    /// Channel occupancy to deliver a page for programming: the program
    /// control packet followed by the data packet.
    pub fn write_in_time(&self, payload_bytes: u32) -> SimTime {
        self.control_packet_time(FlashCommand::ProgramPage) + self.data_packet_time(payload_bytes)
    }

    /// Channel occupancy of a chip-to-chip transfer on a v-channel: the
    /// xfer control packet plus the data packet (one traversal — the point
    /// of direct flash-to-flash movement).
    pub fn xfer_time(&self, payload_bytes: u32) -> SimTime {
        self.control_packet_time(FlashCommand::XferOut) + self.data_packet_time(payload_bytes)
    }

    /// Wire time of a NAK notification after a failed CRC check: a two-flit
    /// micro-frame (header + CRC) back to the sender. Only packetized links
    /// can send one — the dedicated-signal interface has no frame check to
    /// fail.
    pub fn nak_time(&self) -> SimTime {
        self.params.flit_time(2)
    }

    /// Flit bytes of the control packets in `cmds` plus one data packet
    /// around `payload_bytes`, minus the payload itself.
    fn packet_overhead(&self, cmds: &[FlashCommand], payload_bytes: u32) -> u64 {
        let ctl: u64 = cmds
            .iter()
            .map(|&c| ControlPacket::for_command(c).flits())
            .sum();
        let data = DataPacket::new(payload_bytes).flits();
        (ctl + data) * FLIT_BYTES as u64 - payload_bytes as u64
    }

    /// Functional probe of a full read transaction (read command, transfer
    /// command, data packet).
    pub fn probe_read(&self, payload_bytes: u32) -> TransferProbe {
        TransferProbe {
            payload_bytes: payload_bytes as u64,
            overhead_bytes: self.packet_overhead(
                &[FlashCommand::ReadPage, FlashCommand::ReadDataTransfer],
                payload_bytes,
            ),
        }
    }

    /// Functional probe of a full program transaction (program command plus
    /// data packet).
    pub fn probe_program(&self, payload_bytes: u32) -> TransferProbe {
        TransferProbe {
            payload_bytes: payload_bytes as u64,
            overhead_bytes: self.packet_overhead(&[FlashCommand::ProgramPage], payload_bytes),
        }
    }

    /// Functional probe of a chip-to-chip transfer on a v-channel.
    pub fn probe_xfer(&self, payload_bytes: u32) -> TransferProbe {
        TransferProbe {
            payload_bytes: payload_bytes as u64,
            overhead_bytes: self.packet_overhead(&[FlashCommand::XferOut], payload_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidths_match_table2() {
        assert_eq!(BusParams::table2_baseline().bytes_per_sec(), 1_000_000_000);
        assert_eq!(BusParams::table2_pssd().bytes_per_sec(), 2_000_000_000);
    }

    #[test]
    fn sixteen_bit_bus_halves_payload_time() {
        let b8 = BusParams::table2_baseline();
        let b16 = BusParams::table2_pssd();
        assert_eq!(b8.payload_time(16 * 1024), SimTime::from_ns(16_384));
        assert_eq!(b16.payload_time(16 * 1024), SimTime::from_ns(8_192));
    }

    #[test]
    fn flit_time_rounds_up_on_wide_bus() {
        let b16 = BusParams::table2_pssd();
        // 3 flits on a 16-bit bus = 2 beats.
        assert_eq!(b16.flit_time(3), SimTime::from_ns(2));
    }

    #[test]
    fn dedicated_read_phases() {
        let bus = DedicatedBus::new(BusParams::table2_baseline());
        assert_eq!(
            bus.command_phase(FlashCommand::ReadPage),
            SimTime::from_ns(7)
        );
        assert_eq!(bus.data_phase(16 * 1024), SimTime::from_ns(16_384));
        assert_eq!(bus.read_occupancy(16 * 1024), SimTime::from_ns(16_391));
    }

    #[test]
    fn packetized_read_is_about_half_the_baseline() {
        let base = DedicatedBus::new(BusParams::table2_baseline());
        let pssd = PacketBus::new(BusParams::table2_pssd());
        let base_t = base.read_occupancy(16 * 1024).as_ns() as f64;
        let pssd_t = (pssd.control_packet_time(FlashCommand::ReadPage)
            + pssd.read_out_time(16 * 1024))
        .as_ns() as f64;
        let ratio = base_t / pssd_t;
        assert!(
            (1.9..=2.05).contains(&ratio),
            "expected ~2x speedup, got {ratio}"
        );
    }

    #[test]
    fn packet_overhead_small_versus_raw() {
        let pssd = PacketBus::new(BusParams::table2_pssd());
        let raw = pssd.params.payload_time(16 * 1024);
        let pkt = pssd.data_packet_time(16 * 1024);
        let overhead = (pkt.as_ns() - raw.as_ns()) as f64 / raw.as_ns() as f64;
        assert!(overhead < 0.001, "data packet overhead {overhead}");
    }

    #[test]
    fn xfer_uses_one_traversal() {
        let v = PacketBus::new(BusParams::table2_baseline());
        let one = v.xfer_time(16 * 1024);
        let via_controller = v.read_out_time(16 * 1024) + v.write_in_time(16 * 1024);
        assert!(one < via_controller.scale(6, 10)); // comfortably under half
    }

    #[test]
    fn probes_agree_on_payload_across_backends() {
        let ded = DedicatedBus::new(BusParams::table2_baseline());
        let pkt = PacketBus::new(BusParams::table2_pssd());
        for bytes in [1u32, 512, 4 * 1024, 16 * 1024, 64 * 1024] {
            let dr = ded.probe_read(bytes as u64);
            let pr = pkt.probe_read(bytes);
            assert_eq!(
                dr.payload_bytes, pr.payload_bytes,
                "read payload at {bytes}"
            );
            let dw = ded.probe_program(bytes as u64);
            let pw = pkt.probe_program(bytes);
            assert_eq!(
                dw.payload_bytes, pw.payload_bytes,
                "write payload at {bytes}"
            );
            // Overheads differ by construction but are protocol-sized, not
            // payload-sized.
            assert!(dr.overhead_bytes < 32 && pr.overhead_bytes < 32);
            assert!(pkt.probe_xfer(bytes).payload_bytes == bytes as u64);
        }
    }

    #[test]
    fn probe_efficiency_approaches_one_for_full_pages() {
        let pkt = PacketBus::new(BusParams::table2_pssd());
        let p = pkt.probe_read(16 * 1024);
        assert!(p.efficiency() > 0.999, "efficiency {}", p.efficiency());
        assert_eq!(p.total_bytes(), p.payload_bytes + p.overhead_bytes);
        let tiny = pkt.probe_read(1);
        assert!(tiny.efficiency() < 0.5, "1-byte frames are mostly protocol");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = BusParams::new(1000, 0);
    }

    #[test]
    fn nak_is_two_flits() {
        let b8 = PacketBus::new(BusParams::table2_baseline());
        assert_eq!(b8.nak_time(), SimTime::from_ns(2));
        let b16 = PacketBus::new(BusParams::table2_pssd());
        assert_eq!(b16.nak_time(), SimTime::from_ns(1));
    }
}
