//! Packet formats of the packetized interface (Fig 8).
//!
//! A *flit* is 8 bits — one transfer beat on an 8-bit channel; a 16-bit
//! channel moves two flits per beat. Control packets carry a command and its
//! column/row addresses behind a one-flit header whose `T`/`C`/`R` fields
//! give the three variable lengths. Data packets carry a page (or part of
//! one) behind a one-flit header and a two-flit length field.
//!
//! The header layout implemented here packs `type:2 | T:2 | C:2 | R:2`; the
//! paper counts 6 of the 8 header bits as semantically used, yielding its
//! quoted 25% control-header / 50% data-header overhead. Either way the
//! header costs exactly one flit, which is what the timing model consumes.

use core::fmt;

use nssd_flash::FlashCommand;

/// Number of payload bytes carried per flit.
pub const FLIT_BYTES: u32 = 1;

/// Length field width of a data packet, in flits (16-bit length: pages up to
/// 64 KB per Fig 8).
pub const DATA_LEN_FLITS: u32 = 2;

/// Discriminates packet kinds in the header's `Type` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Command/address packet.
    Control = 0b00,
    /// Payload packet.
    Data = 0b01,
}

impl PacketType {
    /// Decodes the 2-bit type field.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::UnknownType`] for reserved encodings.
    pub fn from_bits(bits: u8) -> Result<Self, PacketError> {
        match bits & 0b11 {
            0b00 => Ok(PacketType::Control),
            0b01 => Ok(PacketType::Data),
            other => Err(PacketError::UnknownType(other)),
        }
    }
}

/// Errors from packet header decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Reserved `Type` encoding.
    UnknownType(u8),
    /// Header/length bytes missing.
    Truncated,
    /// A field exceeded its encodable range.
    FieldOverflow(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::UnknownType(b) => write!(f, "unknown packet type bits {b:#04b}"),
            PacketError::Truncated => write!(f, "packet bytes truncated"),
            PacketError::FieldOverflow(field) => write!(f, "packet field `{field}` overflows"),
        }
    }
}

impl std::error::Error for PacketError {}

/// A control packet: one header flit plus command/column/row flits.
///
/// # Examples
///
/// ```
/// use nssd_flash::FlashCommand;
/// use nssd_interconnect::ControlPacket;
///
/// let p = ControlPacket::for_command(FlashCommand::ReadPage);
/// // header(1) + cmd(2) + col(2) + row(3)
/// assert_eq!(p.flits(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlPacket {
    /// Command flit count (`T` field), at most 3.
    pub command_flits: u8,
    /// Column-address flit count (`C` field), at most 3.
    pub column_flits: u8,
    /// Row-address flit count (`R` field), at most 3.
    pub row_flits: u8,
}

impl ControlPacket {
    /// Builds the control packet that encodes `cmd` with its standard
    /// address cycle counts.
    pub fn for_command(cmd: FlashCommand) -> Self {
        ControlPacket {
            command_flits: cmd.command_bytes() as u8,
            column_flits: cmd.column_address_bytes() as u8,
            row_flits: cmd.row_address_bytes() as u8,
        }
    }

    /// Total flits on the wire, including the header.
    pub fn flits(&self) -> u64 {
        1 + self.command_flits as u64 + self.column_flits as u64 + self.row_flits as u64
    }

    /// Encodes the header flit: `type:2 | T:2 | C:2 | R:2`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::FieldOverflow`] if any count exceeds 3.
    pub fn encode_header(&self) -> Result<u8, PacketError> {
        if self.command_flits > 3 {
            return Err(PacketError::FieldOverflow("T"));
        }
        if self.column_flits > 3 {
            return Err(PacketError::FieldOverflow("C"));
        }
        if self.row_flits > 3 {
            return Err(PacketError::FieldOverflow("R"));
        }
        Ok(((PacketType::Control as u8) << 6)
            | (self.command_flits << 4)
            | (self.column_flits << 2)
            | self.row_flits)
    }

    /// Decodes a header flit produced by [`ControlPacket::encode_header`].
    ///
    /// # Errors
    ///
    /// Returns an error if the type bits do not say *control*.
    pub fn decode_header(byte: u8) -> Result<Self, PacketError> {
        match PacketType::from_bits(byte >> 6)? {
            PacketType::Control => Ok(ControlPacket {
                command_flits: (byte >> 4) & 0b11,
                column_flits: (byte >> 2) & 0b11,
                row_flits: byte & 0b11,
            }),
            PacketType::Data => Err(PacketError::UnknownType(byte >> 6)),
        }
    }

    /// Fraction of the header flit that is framing overhead (the paper's
    /// 25%: 2 of 8 bits unused in its 6-bit-semantics layout).
    pub fn header_overhead_fraction() -> f64 {
        0.25
    }
}

/// A data packet: one header flit, a two-flit length, then the payload.
///
/// # Examples
///
/// ```
/// use nssd_interconnect::DataPacket;
///
/// let p = DataPacket::new(16 * 1024);
/// assert_eq!(p.flits(), 1 + 2 + 16 * 1024);
/// assert!(p.overhead_fraction() < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataPacket {
    /// Payload size in bytes (≤ 64 KB, the maximum page size the length
    /// field encodes).
    pub payload_bytes: u32,
}

impl DataPacket {
    /// Creates a data packet for `payload_bytes` of page data.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the 64 KB the 16-bit length encodes,
    /// or is zero.
    pub fn new(payload_bytes: u32) -> Self {
        assert!(payload_bytes > 0, "data packet payload must be nonzero");
        assert!(
            payload_bytes <= 64 * 1024,
            "data packet payload exceeds 64 KB length field"
        );
        DataPacket { payload_bytes }
    }

    /// Total flits on the wire: header + length + payload.
    pub fn flits(&self) -> u64 {
        1 + DATA_LEN_FLITS as u64 + self.payload_bytes as u64 / FLIT_BYTES as u64
    }

    /// Encodes header + length flits.
    pub fn encode_prefix(&self) -> [u8; 3] {
        // Length field stores payload_bytes - 1 so 64 KB fits in 16 bits.
        let len = self.payload_bytes - 1;
        [
            (PacketType::Data as u8) << 6,
            (len >> 8) as u8,
            (len & 0xff) as u8,
        ]
    }

    /// Decodes the three prefix flits back into a packet.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a non-data type field.
    pub fn decode_prefix(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < 3 {
            return Err(PacketError::Truncated);
        }
        match PacketType::from_bits(bytes[0] >> 6)? {
            PacketType::Data => {
                let len = ((bytes[1] as u32) << 8) | bytes[2] as u32;
                Ok(DataPacket {
                    payload_bytes: len + 1,
                })
            }
            PacketType::Control => Err(PacketError::UnknownType(bytes[0] >> 6)),
        }
    }

    /// Fraction of the whole packet that is framing overhead.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.flits() as f64;
        (total - self.payload_bytes as f64) / total
    }

    /// Fraction of the header flit that is framing overhead (the paper's
    /// 50%: 4 of 8 bits unused).
    pub fn header_overhead_fraction() -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packet_sizes_per_command() {
        let read = ControlPacket::for_command(FlashCommand::ReadPage);
        assert_eq!(read.flits(), 8);
        let erase = ControlPacket::for_command(FlashCommand::EraseBlock);
        assert_eq!(erase.flits(), 6);
        let rdt = ControlPacket::for_command(FlashCommand::ReadDataTransfer);
        assert_eq!(rdt.flits(), 4);
    }

    #[test]
    fn control_header_roundtrip() {
        for cmd in [
            FlashCommand::ReadPage,
            FlashCommand::ProgramPage,
            FlashCommand::EraseBlock,
            FlashCommand::ReadDataTransfer,
            FlashCommand::XferOut,
            FlashCommand::XferIn,
            FlashCommand::ProgramFromVPage,
        ] {
            let p = ControlPacket::for_command(cmd);
            let enc = p.encode_header().unwrap();
            assert_eq!(ControlPacket::decode_header(enc).unwrap(), p);
        }
    }

    #[test]
    fn control_header_rejects_oversized_fields() {
        let p = ControlPacket {
            command_flits: 4,
            column_flits: 0,
            row_flits: 0,
        };
        assert_eq!(p.encode_header(), Err(PacketError::FieldOverflow("T")));
    }

    #[test]
    fn data_packet_16k_page() {
        let p = DataPacket::new(16 * 1024);
        assert_eq!(p.flits(), 16_387);
        // 3 framing flits over 16387 ≈ 0.018% — "relatively small" per §IV-B3.
        assert!(p.overhead_fraction() < 0.0002);
    }

    #[test]
    fn data_prefix_roundtrip_boundaries() {
        for &bytes in &[1u32, 2, 255, 256, 16 * 1024, 64 * 1024] {
            let p = DataPacket::new(bytes);
            let enc = p.encode_prefix();
            assert_eq!(DataPacket::decode_prefix(&enc).unwrap(), p);
        }
    }

    #[test]
    #[should_panic(expected = "64 KB")]
    fn data_packet_too_large_panics() {
        let _ = DataPacket::new(64 * 1024 + 1);
    }

    #[test]
    fn decode_rejects_wrong_type() {
        let ctrl = ControlPacket::for_command(FlashCommand::ReadPage)
            .encode_header()
            .unwrap();
        assert!(DataPacket::decode_prefix(&[ctrl, 0, 0]).is_err());
        let data = DataPacket::new(64).encode_prefix();
        assert!(ControlPacket::decode_header(data[0]).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(
            DataPacket::decode_prefix(&[0x40]),
            Err(PacketError::Truncated)
        );
    }

    #[test]
    fn header_overhead_constants_match_paper() {
        assert_eq!(ControlPacket::header_overhead_fraction(), 0.25);
        assert_eq!(DataPacket::header_overhead_fraction(), 0.5);
    }
}
