//! Packet formats of the packetized interface (Fig 8).
//!
//! A *flit* is 8 bits — one transfer beat on an 8-bit channel; a 16-bit
//! channel moves two flits per beat. Control packets carry a command and its
//! column/row addresses behind a one-flit header whose `T`/`C`/`R` fields
//! give the three variable lengths. Data packets carry a page (or part of
//! one) behind a one-flit header and a two-flit length field.
//!
//! The header layout implemented here packs `type:2 | T:2 | C:2 | R:2`; the
//! paper counts 6 of the 8 header bits as semantically used, yielding its
//! quoted 25% control-header / 50% data-header overhead. Either way the
//! header costs exactly one flit, which is what the timing model consumes.

use core::fmt;

use nssd_flash::FlashCommand;

/// Number of payload bytes carried per flit.
pub const FLIT_BYTES: u32 = 1;

/// Length field width of a data packet, in flits (16-bit length: pages up to
/// 64 KB per Fig 8).
pub const DATA_LEN_FLITS: u32 = 2;

/// Discriminates packet kinds in the header's `Type` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Command/address packet.
    Control = 0b00,
    /// Payload packet.
    Data = 0b01,
}

impl PacketType {
    /// Decodes the 2-bit type field.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::UnknownType`] for reserved encodings.
    pub fn from_bits(bits: u8) -> Result<Self, PacketError> {
        match bits & 0b11 {
            0b00 => Ok(PacketType::Control),
            0b01 => Ok(PacketType::Data),
            other => Err(PacketError::UnknownType(other)),
        }
    }
}

/// Errors from packet header decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Reserved `Type` encoding.
    UnknownType(u8),
    /// Header/length bytes missing.
    Truncated,
    /// A field exceeded its encodable range.
    FieldOverflow(&'static str),
    /// The trailing CRC flit does not match the frame contents — the
    /// receiver NAKs and the sender retransmits.
    CrcMismatch {
        /// CRC carried by the frame.
        got: u8,
        /// CRC recomputed over the received bytes.
        want: u8,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::UnknownType(b) => write!(f, "unknown packet type bits {b:#04b}"),
            PacketError::Truncated => write!(f, "packet bytes truncated"),
            PacketError::FieldOverflow(field) => write!(f, "packet field `{field}` overflows"),
            PacketError::CrcMismatch { got, want } => {
                write!(
                    f,
                    "crc mismatch: frame carries {got:#04x}, computed {want:#04x}"
                )
            }
        }
    }
}

/// CRC-8/ATM (polynomial `x^8 + x^2 + x + 1`, initial value 0) over a byte
/// slice — the single-flit frame check appended to CRC-protected packets.
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

impl std::error::Error for PacketError {}

/// A control packet: one header flit plus command/column/row flits.
///
/// # Examples
///
/// ```
/// use nssd_flash::FlashCommand;
/// use nssd_interconnect::ControlPacket;
///
/// let p = ControlPacket::for_command(FlashCommand::ReadPage);
/// // header(1) + cmd(2) + col(2) + row(3)
/// assert_eq!(p.flits(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlPacket {
    /// Command flit count (`T` field), at most 3.
    pub command_flits: u8,
    /// Column-address flit count (`C` field), at most 3.
    pub column_flits: u8,
    /// Row-address flit count (`R` field), at most 3.
    pub row_flits: u8,
}

impl ControlPacket {
    /// Builds the control packet that encodes `cmd` with its standard
    /// address cycle counts.
    pub fn for_command(cmd: FlashCommand) -> Self {
        ControlPacket {
            command_flits: cmd.command_bytes() as u8,
            column_flits: cmd.column_address_bytes() as u8,
            row_flits: cmd.row_address_bytes() as u8,
        }
    }

    /// Total flits on the wire, including the header.
    pub fn flits(&self) -> u64 {
        1 + self.command_flits as u64 + self.column_flits as u64 + self.row_flits as u64
    }

    /// Encodes the header flit: `type:2 | T:2 | C:2 | R:2`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::FieldOverflow`] if any count exceeds 3.
    pub fn encode_header(&self) -> Result<u8, PacketError> {
        if self.command_flits > 3 {
            return Err(PacketError::FieldOverflow("T"));
        }
        if self.column_flits > 3 {
            return Err(PacketError::FieldOverflow("C"));
        }
        if self.row_flits > 3 {
            return Err(PacketError::FieldOverflow("R"));
        }
        Ok(((PacketType::Control as u8) << 6)
            | (self.command_flits << 4)
            | (self.column_flits << 2)
            | self.row_flits)
    }

    /// Decodes a header flit produced by [`ControlPacket::encode_header`].
    ///
    /// # Errors
    ///
    /// Returns an error if the type bits do not say *control*.
    pub fn decode_header(byte: u8) -> Result<Self, PacketError> {
        match PacketType::from_bits(byte >> 6)? {
            PacketType::Control => Ok(ControlPacket {
                command_flits: (byte >> 4) & 0b11,
                column_flits: (byte >> 2) & 0b11,
                row_flits: byte & 0b11,
            }),
            PacketType::Data => Err(PacketError::UnknownType(byte >> 6)),
        }
    }

    /// Fraction of the header flit that is framing overhead (the paper's
    /// 25%: 2 of 8 bits unused in its 6-bit-semantics layout).
    pub fn header_overhead_fraction() -> f64 {
        0.25
    }

    /// Encodes the header flit followed by its CRC-8 flit.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::FieldOverflow`] if any count exceeds 3.
    pub fn encode_header_crc(&self) -> Result<[u8; 2], PacketError> {
        let header = self.encode_header()?;
        Ok([header, crc8(&[header])])
    }

    /// Decodes a `[header, crc]` pair, verifying the frame check first.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::CrcMismatch`] on a failed check, otherwise
    /// any [`ControlPacket::decode_header`] error.
    pub fn decode_header_crc(bytes: [u8; 2]) -> Result<Self, PacketError> {
        let want = crc8(&bytes[..1]);
        if bytes[1] != want {
            return Err(PacketError::CrcMismatch {
                got: bytes[1],
                want,
            });
        }
        Self::decode_header(bytes[0])
    }
}

/// A data packet: one header flit, a two-flit length, then the payload.
///
/// # Examples
///
/// ```
/// use nssd_interconnect::DataPacket;
///
/// let p = DataPacket::new(16 * 1024);
/// assert_eq!(p.flits(), 1 + 2 + 16 * 1024);
/// assert!(p.overhead_fraction() < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataPacket {
    /// Payload size in bytes (≤ 64 KB, the maximum page size the length
    /// field encodes).
    pub payload_bytes: u32,
}

impl DataPacket {
    /// Creates a data packet for `payload_bytes` of page data.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the 64 KB the 16-bit length encodes,
    /// or is zero.
    pub fn new(payload_bytes: u32) -> Self {
        assert!(payload_bytes > 0, "data packet payload must be nonzero");
        assert!(
            payload_bytes <= 64 * 1024,
            "data packet payload exceeds 64 KB length field"
        );
        DataPacket { payload_bytes }
    }

    /// Total flits on the wire: header + length + payload.
    pub fn flits(&self) -> u64 {
        1 + DATA_LEN_FLITS as u64 + self.payload_bytes as u64 / FLIT_BYTES as u64
    }

    /// Encodes header + length flits.
    pub fn encode_prefix(&self) -> [u8; 3] {
        // Length field stores payload_bytes - 1 so 64 KB fits in 16 bits.
        let len = self.payload_bytes - 1;
        [
            (PacketType::Data as u8) << 6,
            (len >> 8) as u8,
            (len & 0xff) as u8,
        ]
    }

    /// Decodes the three prefix flits back into a packet.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a non-data type field.
    pub fn decode_prefix(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < 3 {
            return Err(PacketError::Truncated);
        }
        match PacketType::from_bits(bytes[0] >> 6)? {
            PacketType::Data => {
                let len = ((bytes[1] as u32) << 8) | bytes[2] as u32;
                Ok(DataPacket {
                    payload_bytes: len + 1,
                })
            }
            PacketType::Control => Err(PacketError::UnknownType(bytes[0] >> 6)),
        }
    }

    /// Fraction of the whole packet that is framing overhead.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.flits() as f64;
        (total - self.payload_bytes as f64) / total
    }

    /// Fraction of the header flit that is framing overhead (the paper's
    /// 50%: 4 of 8 bits unused).
    pub fn header_overhead_fraction() -> f64 {
        0.5
    }

    /// Encodes header + length flits followed by a CRC-8 flit over them.
    /// (The payload CRC rides at the end of the payload burst; timing-wise
    /// both are single flits, which is what the bus model charges.)
    pub fn encode_prefix_crc(&self) -> [u8; 4] {
        let prefix = self.encode_prefix();
        [prefix[0], prefix[1], prefix[2], crc8(&prefix)]
    }

    /// Decodes a CRC-carrying prefix, verifying the frame check first.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] on fewer than 4 bytes,
    /// [`PacketError::CrcMismatch`] on a failed check, otherwise any
    /// [`DataPacket::decode_prefix`] error.
    pub fn decode_prefix_crc(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < 4 {
            return Err(PacketError::Truncated);
        }
        let want = crc8(&bytes[..3]);
        if bytes[3] != want {
            return Err(PacketError::CrcMismatch {
                got: bytes[3],
                want,
            });
        }
        Self::decode_prefix(&bytes[..3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packet_sizes_per_command() {
        let read = ControlPacket::for_command(FlashCommand::ReadPage);
        assert_eq!(read.flits(), 8);
        let erase = ControlPacket::for_command(FlashCommand::EraseBlock);
        assert_eq!(erase.flits(), 6);
        let rdt = ControlPacket::for_command(FlashCommand::ReadDataTransfer);
        assert_eq!(rdt.flits(), 4);
    }

    #[test]
    fn control_header_roundtrip() {
        for cmd in [
            FlashCommand::ReadPage,
            FlashCommand::ProgramPage,
            FlashCommand::EraseBlock,
            FlashCommand::ReadDataTransfer,
            FlashCommand::XferOut,
            FlashCommand::XferIn,
            FlashCommand::ProgramFromVPage,
        ] {
            let p = ControlPacket::for_command(cmd);
            let enc = p.encode_header().unwrap();
            assert_eq!(ControlPacket::decode_header(enc).unwrap(), p);
        }
    }

    #[test]
    fn control_header_rejects_oversized_fields() {
        let p = ControlPacket {
            command_flits: 4,
            column_flits: 0,
            row_flits: 0,
        };
        assert_eq!(p.encode_header(), Err(PacketError::FieldOverflow("T")));
    }

    #[test]
    fn data_packet_16k_page() {
        let p = DataPacket::new(16 * 1024);
        assert_eq!(p.flits(), 16_387);
        // 3 framing flits over 16387 ≈ 0.018% — "relatively small" per §IV-B3.
        assert!(p.overhead_fraction() < 0.0002);
    }

    #[test]
    fn data_prefix_roundtrip_boundaries() {
        for &bytes in &[1u32, 2, 255, 256, 16 * 1024, 64 * 1024] {
            let p = DataPacket::new(bytes);
            let enc = p.encode_prefix();
            assert_eq!(DataPacket::decode_prefix(&enc).unwrap(), p);
        }
    }

    #[test]
    #[should_panic(expected = "64 KB")]
    fn data_packet_too_large_panics() {
        let _ = DataPacket::new(64 * 1024 + 1);
    }

    #[test]
    fn decode_rejects_wrong_type() {
        let ctrl = ControlPacket::for_command(FlashCommand::ReadPage)
            .encode_header()
            .unwrap();
        assert!(DataPacket::decode_prefix(&[ctrl, 0, 0]).is_err());
        let data = DataPacket::new(64).encode_prefix();
        assert!(ControlPacket::decode_header(data[0]).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(
            DataPacket::decode_prefix(&[0x40]),
            Err(PacketError::Truncated)
        );
    }

    #[test]
    fn header_overhead_constants_match_paper() {
        assert_eq!(ControlPacket::header_overhead_fraction(), 0.25);
        assert_eq!(DataPacket::header_overhead_fraction(), 0.5);
    }

    #[test]
    fn crc8_known_properties() {
        // Empty input and all-zero input give CRC 0 for this polynomial.
        assert_eq!(crc8(&[]), 0);
        assert_eq!(crc8(&[0, 0, 0]), 0);
        // Any single-bit flip changes the CRC.
        let base = crc8(&[0x42, 0x17]);
        for bit in 0..16 {
            let mut corrupted = [0x42u8, 0x17];
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc8(&corrupted), base, "bit {bit} flip undetected");
        }
    }

    #[test]
    fn crc_header_roundtrip_and_detection() {
        let p = ControlPacket::for_command(FlashCommand::ReadPage);
        let enc = p.encode_header_crc().unwrap();
        assert_eq!(ControlPacket::decode_header_crc(enc).unwrap(), p);
        // Corrupt the header: the CRC catches it before type decoding.
        let bad = [enc[0] ^ 0x10, enc[1]];
        assert!(matches!(
            ControlPacket::decode_header_crc(bad),
            Err(PacketError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn crc_prefix_roundtrip_and_detection() {
        let p = DataPacket::new(16 * 1024);
        let enc = p.encode_prefix_crc();
        assert_eq!(DataPacket::decode_prefix_crc(&enc).unwrap(), p);
        let mut bad = enc;
        bad[1] ^= 0x01; // corrupt the length field
        assert!(matches!(
            DataPacket::decode_prefix_crc(&bad),
            Err(PacketError::CrcMismatch { .. })
        ));
        assert_eq!(
            DataPacket::decode_prefix_crc(&enc[..3]),
            Err(PacketError::Truncated)
        );
    }
}
