//! The Omnibus topology (§V): a 2D bus organization for pnSSD.
//!
//! Every chip sits on one *horizontal* channel (its row — the conventional
//! flash bus, always controller-attached) and one *vertical* channel (its
//! column). Each flash channel controller uses the pin bandwidth freed by
//! packetization to additionally drive exactly one v-channel, producing a
//! *split* architecture: controllers are the control plane, chips and
//! channels are the data plane.
//!
//! This module is pure topology math — which paths exist, who owns which
//! v-channel, and how many control-plane messages a transfer needs (Fig 11).
//! Actual channel contention is modeled by the engine with one
//! [`nssd_sim::Resource`] per channel.

use core::fmt;

use nssd_sim::SimTime;

/// Identifies one of the two path classes a chip can use for I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPath {
    /// The chip's horizontal channel (index = channel/row).
    Horizontal(u32),
    /// The chip's vertical channel (index = v-channel).
    Vertical(u32),
}

/// The role a controller plays in one flash-to-flash transfer (Fig 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerRole {
    /// Its h-channel hosts the source chip.
    Source,
    /// Its h-channel hosts the destination chip.
    Destination,
    /// It only owns the v-channel the transfer rides on.
    Intermediate,
}

impl fmt::Display for ControllerRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ControllerRole::Source => "source",
            ControllerRole::Destination => "destination",
            ControllerRole::Intermediate => "intermediate",
        };
        f.write_str(s)
    }
}

/// The Omnibus 2D bus topology.
///
/// # Examples
///
/// ```
/// use nssd_interconnect::{IoPath, Omnibus};
///
/// let t = Omnibus::new(8, 8, 8);
/// // Chip at channel 2, way 5 can use h-channel 2 or v-channel 5.
/// assert_eq!(t.h_path(2), IoPath::Horizontal(2));
/// assert_eq!(t.v_path(5), IoPath::Vertical(5));
/// assert_eq!(t.controller_of_v_channel(5), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Omnibus {
    channels: u32,
    ways: u32,
    controllers: u32,
}

impl Omnibus {
    /// Creates an Omnibus over `channels` rows × `ways` columns with
    /// `controllers` flash channel controllers (normally one per channel).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `controllers != channels` (the
    /// paper's organization pairs one controller with each h-channel).
    pub fn new(channels: u32, ways: u32, controllers: u32) -> Self {
        assert!(channels > 0 && ways > 0 && controllers > 0);
        assert!(
            controllers == channels,
            "each h-channel needs its controller (got {controllers} controllers, {channels} channels)"
        );
        Omnibus {
            channels,
            ways,
            controllers,
        }
    }

    /// Number of horizontal channels (rows).
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Number of ways (columns).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of controllers.
    pub fn controllers(&self) -> u32 {
        self.controllers
    }

    /// Number of vertical channels. With fewer controllers than ways, each
    /// v-channel interconnects several adjacent columns (§V-E); with more
    /// controllers than ways, the surplus controllers drive no v-channel.
    pub fn v_channel_count(&self) -> u32 {
        self.controllers.min(self.ways)
    }

    /// The v-channel serving column `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn v_channel_of_way(&self, way: u32) -> u32 {
        assert!(way < self.ways, "way {way} out of range ({})", self.ways);
        (way as u64 * self.v_channel_count() as u64 / self.ways as u64) as u32
    }

    /// The controller that owns (drives) v-channel `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn controller_of_v_channel(&self, v: u32) -> u32 {
        assert!(v < self.v_channel_count(), "v-channel {v} out of range");
        v
    }

    /// The horizontal I/O path of a chip on `channel`.
    pub fn h_path(&self, channel: u32) -> IoPath {
        assert!(channel < self.channels);
        IoPath::Horizontal(channel)
    }

    /// The vertical I/O path of a chip in column `way`.
    pub fn v_path(&self, way: u32) -> IoPath {
        IoPath::Vertical(self.v_channel_of_way(way))
    }

    /// The v-channel a direct flash-to-flash copy can use, if the two chips
    /// share one (the spatial-GC destination constraint, §VI-A).
    pub fn f2f_v_channel(&self, src_way: u32, dst_way: u32) -> Option<u32> {
        let a = self.v_channel_of_way(src_way);
        let b = self.v_channel_of_way(dst_way);
        (a == b).then_some(a)
    }

    /// The role controller `ctrl` plays in a transfer from a chip on
    /// `src_channel` to a chip on `dst_channel` over v-channel `v`, or
    /// `None` if it is uninvolved.
    pub fn role_of(
        &self,
        ctrl: u32,
        src_channel: u32,
        dst_channel: u32,
        v: u32,
    ) -> Option<ControllerRole> {
        if ctrl == src_channel {
            Some(ControllerRole::Source)
        } else if ctrl == dst_channel {
            Some(ControllerRole::Destination)
        } else if ctrl == self.controller_of_v_channel(v) {
            Some(ControllerRole::Intermediate)
        } else {
            None
        }
    }

    /// Number of SoC control-plane messages (requests + grants) needed to
    /// arbitrate a flash-to-flash transfer from a chip on `src_channel` to a
    /// chip on `dst_channel` over v-channel `v` (Fig 11). Each distinct
    /// controller-to-controller edge on the request path costs one request
    /// and one grant.
    pub fn f2f_handshake_messages(&self, src_channel: u32, dst_channel: u32, v: u32) -> u32 {
        let owner = self.controller_of_v_channel(v);
        let mut edges = 0;
        if src_channel != owner {
            edges += 1;
        }
        if owner != dst_channel {
            edges += 1;
        }
        // Same-controller transfers still exchange one local req/grant pair
        // with the on-die data plane, which we fold into zero SoC messages.
        2 * edges
    }

    /// Number of SoC messages for an *I/O* transfer that rides the
    /// v-channel: the chip's h-channel controller must coordinate with the
    /// v-channel owner (zero if they are the same controller).
    pub fn io_v_handshake_messages(&self, chip_channel: u32, v: u32) -> u32 {
        if chip_channel == self.controller_of_v_channel(v) {
            0
        } else {
            2
        }
    }

    /// Latency of `messages` control-plane messages at `msg_latency` each.
    pub fn handshake_time(&self, messages: u32, msg_latency: SimTime) -> SimTime {
        msg_latency * messages as u64
    }

    /// Number of SoC control-plane messages to recover one corrupted packet
    /// on a link involving `ctrl_edges` controller-to-controller edges: the
    /// receiver's NAK travels back across each edge and the retransmission
    /// grant returns (the data retransmission itself is charged on the
    /// channel timeline, not here). Zero edges (a chip talking to its own
    /// h-channel controller) needs no SoC messages — the NAK stays on the
    /// wire.
    pub fn nak_recovery_messages(&self, ctrl_edges: u32) -> u32 {
        2 * ctrl_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_organization_owns_one_v_each() {
        let t = Omnibus::new(8, 8, 8);
        assert_eq!(t.v_channel_count(), 8);
        for w in 0..8 {
            assert_eq!(t.v_channel_of_way(w), w);
            assert_eq!(t.controller_of_v_channel(w), w);
        }
    }

    #[test]
    fn wide_organization_groups_columns() {
        // 4 channels/controllers, 8 ways: each v-channel spans 2 columns.
        let t = Omnibus::new(4, 8, 4);
        assert_eq!(t.v_channel_count(), 4);
        assert_eq!(t.v_channel_of_way(0), 0);
        assert_eq!(t.v_channel_of_way(1), 0);
        assert_eq!(t.v_channel_of_way(2), 1);
        assert_eq!(t.v_channel_of_way(7), 3);
    }

    #[test]
    fn tall_organization_leaves_idle_controllers() {
        // 8 channels, 4 ways: only 4 v-channels exist.
        let t = Omnibus::new(8, 4, 8);
        assert_eq!(t.v_channel_count(), 4);
        assert_eq!(t.v_channel_of_way(3), 3);
    }

    #[test]
    fn f2f_requires_shared_v_channel() {
        let t = Omnibus::new(8, 8, 8);
        assert_eq!(t.f2f_v_channel(3, 3), Some(3));
        assert_eq!(t.f2f_v_channel(3, 4), None);
        let grouped = Omnibus::new(4, 8, 4);
        // Ways 0 and 1 share v-channel 0 in the grouped organization.
        assert_eq!(grouped.f2f_v_channel(0, 1), Some(0));
    }

    #[test]
    fn roles_match_fig11() {
        let t = Omnibus::new(8, 8, 8);
        // Fig 11(a): C0 source, C1 destination, v owned by C0.
        assert_eq!(t.role_of(0, 0, 1, 0), Some(ControllerRole::Source));
        assert_eq!(t.role_of(1, 0, 1, 0), Some(ControllerRole::Destination));
        // Fig 11(c): src C2, dst C3, v-channel owned by C0.
        assert_eq!(t.role_of(0, 2, 3, 0), Some(ControllerRole::Intermediate));
        assert_eq!(t.role_of(5, 2, 3, 0), None);
    }

    #[test]
    fn handshake_message_counts_match_fig11() {
        let t = Omnibus::new(8, 8, 8);
        // (a) source owns the v-channel: one req/grant pair with the dest.
        assert_eq!(t.f2f_handshake_messages(0, 1, 0), 2);
        // (b) destination owns the v-channel: symmetric.
        assert_eq!(t.f2f_handshake_messages(2, 0, 0), 2);
        // (c) intermediate owner: request relayed C2→C0→C3, grants back.
        assert_eq!(t.f2f_handshake_messages(2, 3, 0), 4);
        // Entirely local.
        assert_eq!(t.f2f_handshake_messages(0, 0, 0), 0);
    }

    #[test]
    fn io_handshake_free_on_own_column() {
        let t = Omnibus::new(8, 8, 8);
        assert_eq!(t.io_v_handshake_messages(3, 3), 0);
        assert_eq!(t.io_v_handshake_messages(2, 3), 2);
        assert_eq!(
            t.handshake_time(2, SimTime::from_ns(100)),
            SimTime::from_ns(200)
        );
    }

    #[test]
    #[should_panic(expected = "controller")]
    fn controller_channel_mismatch_rejected() {
        let _ = Omnibus::new(8, 8, 4);
    }

    #[test]
    fn non_divisible_ways_spread_evenly_and_monotonically() {
        // 3 controllers over 8 ways: groups are contiguous, monotone, and
        // every v-channel serves at least one column.
        let t = Omnibus::new(3, 8, 3);
        assert_eq!(t.v_channel_count(), 3);
        let groups: Vec<u32> = (0..8).map(|w| t.v_channel_of_way(w)).collect();
        assert_eq!(groups, [0, 0, 0, 1, 1, 1, 2, 2]);
        for pair in groups.windows(2) {
            assert!(pair[0] <= pair[1], "grouping must be monotone: {groups:?}");
        }
        for v in 0..3 {
            assert!(groups.contains(&v), "v-channel {v} serves no column");
        }
    }

    #[test]
    fn f2f_on_non_divisible_grouping() {
        let t = Omnibus::new(3, 8, 3);
        // Within one column group: direct copy possible.
        assert_eq!(t.f2f_v_channel(0, 2), Some(0));
        assert_eq!(t.f2f_v_channel(6, 7), Some(2));
        // Across the uneven group boundary: staged through the controller.
        assert_eq!(t.f2f_v_channel(2, 3), None);
        assert_eq!(t.f2f_v_channel(5, 6), None);
    }

    #[test]
    fn role_priority_when_controller_plays_several_parts() {
        let t = Omnibus::new(3, 8, 3);
        // Source identity wins even when the controller also owns the
        // v-channel (Fig 11a: the owner-as-source case).
        assert_eq!(t.role_of(0, 0, 1, 0), Some(ControllerRole::Source));
        // Same-channel copy: the one controller is both source and
        // destination; Source is reported.
        assert_eq!(t.role_of(1, 1, 1, 2), Some(ControllerRole::Source));
        assert_eq!(t.role_of(2, 1, 1, 2), Some(ControllerRole::Intermediate));
        assert_eq!(t.role_of(0, 1, 1, 2), None);
    }

    #[test]
    fn single_controller_degenerate_case() {
        // One channel, one controller, several ways: every column shares
        // the single v-channel and every handshake is controller-local.
        let t = Omnibus::new(1, 4, 1);
        assert_eq!(t.v_channel_count(), 1);
        for w in 0..4 {
            assert_eq!(t.v_channel_of_way(w), 0);
        }
        for (a, b) in [(0, 1), (0, 3), (2, 2)] {
            assert_eq!(t.f2f_v_channel(a, b), Some(0));
        }
        // The lone controller is source, destination, and owner at once;
        // Source wins, and no SoC messages are exchanged.
        assert_eq!(t.role_of(0, 0, 0, 0), Some(ControllerRole::Source));
        assert_eq!(t.f2f_handshake_messages(0, 0, 0), 0);
        assert_eq!(t.io_v_handshake_messages(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn way_out_of_range_rejected() {
        let t = Omnibus::new(3, 8, 3);
        let _ = t.v_channel_of_way(8);
    }

    #[test]
    fn nak_recovery_scales_with_edges() {
        let t = Omnibus::new(8, 8, 8);
        assert_eq!(t.nak_recovery_messages(0), 0);
        assert_eq!(t.nak_recovery_messages(1), 2);
        assert_eq!(t.nak_recovery_messages(2), 4);
    }
}
