//! ASCII timing diagrams for read transactions (the paper's Fig 6).
//!
//! Renders the sequence of bus/array phases of one page read on the
//! conventional dedicated-signal interface versus the packetized interface,
//! with phase durations to scale (log-compressed so the 3 µs array read
//! does not dwarf the nanosecond command phases).

use nssd_flash::{FlashCommand, FlashTiming};
use nssd_sim::SimTime;

use crate::{DedicatedBus, PacketBus};

/// One labeled phase of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Short label (e.g. `"CMD"`, `"tR"`, `"DATA"`).
    pub label: String,
    /// Which agent drives the bus during the phase.
    pub driver: PhaseDriver,
    /// Duration.
    pub duration: SimTime,
}

/// Who occupies the channel during a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseDriver {
    /// Flash channel controller drives.
    Controller,
    /// Flash chip drives.
    Chip,
    /// The bus is idle (array busy).
    Idle,
}

/// A transaction's phase list plus rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingDiagram {
    title: String,
    phases: Vec<Phase>,
}

impl TimingDiagram {
    /// Builds the conventional read transaction of Fig 6(a).
    pub fn conventional_read(bus: &DedicatedBus, timing: FlashTiming, page_bytes: u32) -> Self {
        TimingDiagram {
            title: "conventional (dedicated signals)".into(),
            phases: vec![
                Phase {
                    label: "CMD 00h+ADDR+30h".into(),
                    driver: PhaseDriver::Controller,
                    duration: bus.command_phase(FlashCommand::ReadPage),
                },
                Phase {
                    label: "tR".into(),
                    driver: PhaseDriver::Idle,
                    duration: timing.read,
                },
                Phase {
                    label: "DATA (RE_n clocked)".into(),
                    driver: PhaseDriver::Chip,
                    duration: bus.data_phase(page_bytes as u64),
                },
            ],
        }
    }

    /// Builds the packetized read transaction of Fig 6(b).
    pub fn packetized_read(bus: &PacketBus, timing: FlashTiming, page_bytes: u32) -> Self {
        TimingDiagram {
            title: "packetized (pSSD)".into(),
            phases: vec![
                Phase {
                    label: "CTRL pkt (read)".into(),
                    driver: PhaseDriver::Controller,
                    duration: bus.control_packet_time(FlashCommand::ReadPage),
                },
                Phase {
                    label: "tR".into(),
                    driver: PhaseDriver::Idle,
                    duration: timing.read,
                },
                Phase {
                    label: "CTRL pkt (rdt)".into(),
                    driver: PhaseDriver::Controller,
                    duration: bus.control_packet_time(FlashCommand::ReadDataTransfer),
                },
                Phase {
                    label: "DATA pkt".into(),
                    driver: PhaseDriver::Chip,
                    duration: bus.data_packet_time(page_bytes),
                },
            ],
        }
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total transaction latency.
    pub fn total(&self) -> SimTime {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Channel occupancy (bus-driving phases only).
    pub fn bus_occupancy(&self) -> SimTime {
        self.phases
            .iter()
            .filter(|p| p.driver != PhaseDriver::Idle)
            .map(|p| p.duration)
            .sum()
    }

    /// Renders a two-row ASCII diagram (`DQ` occupancy and phase ruler).
    /// Widths are log-compressed so nanosecond and microsecond phases both
    /// stay legible.
    pub fn render(&self) -> String {
        let width_of = |d: SimTime| -> usize {
            // ~4 chars per decade above 1 ns, min 3.
            (3.0 + (d.as_ns().max(1) as f64).log10() * 4.0).round() as usize
        };
        let mut bar = String::from("DQ |");
        let mut ruler = String::from("   |");
        for p in &self.phases {
            let fill = match p.driver {
                PhaseDriver::Controller => '>',
                PhaseDriver::Chip => '<',
                PhaseDriver::Idle => '.',
            };
            let label = format!("{} {}", p.label, p.duration);
            // Wide enough for both the scaled duration and the full label.
            let w = width_of(p.duration).max(label.len());
            bar.push_str(&fill.to_string().repeat(w));
            bar.push('|');
            ruler.push_str(&format!("{label:<w$}"));
            ruler.push('|');
        }
        format!(
            "-- {} (total {})\n{bar}\n{ruler}\n",
            self.title,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusParams;

    fn diagrams() -> (TimingDiagram, TimingDiagram) {
        let base = DedicatedBus::new(BusParams::table2_baseline());
        let pssd = PacketBus::new(BusParams::table2_pssd());
        (
            TimingDiagram::conventional_read(&base, FlashTiming::ull(), 16 * 1024),
            TimingDiagram::packetized_read(&pssd, FlashTiming::ull(), 16 * 1024),
        )
    }

    #[test]
    fn totals_match_component_models() {
        let (conv, pkt) = diagrams();
        assert_eq!(conv.total(), SimTime::from_ns(7 + 3_000 + 16_384));
        // tR is common; the packetized bus phases are about half.
        assert!(pkt.total() < conv.total());
        assert!(pkt.bus_occupancy() < conv.bus_occupancy().scale(11, 20));
    }

    #[test]
    fn idle_phase_excluded_from_occupancy() {
        let (conv, _) = diagrams();
        assert_eq!(
            conv.total() - conv.bus_occupancy(),
            SimTime::from_us(3),
            "tR is the only idle phase"
        );
    }

    #[test]
    fn render_contains_phases_and_scales() {
        let (conv, pkt) = diagrams();
        let c = conv.render();
        assert!(c.contains("tR"));
        assert!(c.contains("DATA"));
        assert!(c.lines().count() >= 3);
        let p = pkt.render();
        assert!(p.contains("CTRL pkt"));
        // Data phase is chip-driven ('<'), command controller-driven ('>').
        assert!(p.contains('<') && p.contains('>') && p.contains('.'));
    }

    #[test]
    fn phase_list_shape() {
        let (conv, pkt) = diagrams();
        assert_eq!(conv.phases().len(), 3);
        assert_eq!(pkt.phases().len(), 4);
        assert_eq!(conv.phases()[1].driver, PhaseDriver::Idle);
    }
}
