//! NoSSD comparison topology: a 2D mesh of flash chips (Tavakkol et al.,
//! CAL 2012 [38]), reproduced as the paper's comparison point.
//!
//! Chips form a `rows × cols` mesh (rows = ways, cols = channels). The flash
//! channel controllers sit on the top edge, controller `c` attaching to node
//! `(0, c)` through an injection/ejection link pair. Packets use XY
//! dimension-order routing (X across row, then Y down the column), which is
//! deadlock-free. Links are unidirectional; the engine gives each
//! [`LinkId`] its own [`nssd_sim::Resource`].

use nssd_sim::SimTime;

use crate::BusParams;

/// A mesh endpoint: either a controller on the top edge or a chip node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshEndpoint {
    /// Controller `c`, attached above node `(0, c)`.
    Controller(u32),
    /// The chip at `(row, col)`.
    Chip {
        /// Row (way) index.
        row: u32,
        /// Column (channel) index.
        col: u32,
    },
}

/// A directed mesh link, identified by a dense index (see [`Mesh::link_count`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Physical parameters of the NoSSD mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshParams {
    /// Per-link bus parameters.
    pub link: BusParams,
    /// Router traversal latency added per hop.
    pub hop_latency: SimTime,
}

impl MeshParams {
    /// Pin-constrained NoSSD: the chip's ~8 data pins split across 4
    /// bidirectional mesh ports → 2-bit links (§VII-A).
    pub const fn pin_constrained() -> Self {
        MeshParams {
            link: BusParams {
                mega_transfers: 1000,
                width_bits: 2,
            },
            hop_latency: SimTime::from_ns(5),
        }
    }

    /// Unconstrained NoSSD: every link kept at the full 8-bit width the
    /// baseline bus enjoys (physically unrealizable; upper bound).
    pub const fn unconstrained() -> Self {
        MeshParams {
            link: BusParams {
                mega_transfers: 1000,
                width_bits: 8,
            },
            hop_latency: SimTime::from_ns(5),
        }
    }
}

/// A `rows × cols` mesh with top-edge controllers and XY routing.
///
/// # Examples
///
/// ```
/// use nssd_interconnect::{Mesh, MeshEndpoint};
///
/// let m = Mesh::new(8, 8);
/// let path = m.route(
///     MeshEndpoint::Controller(2),
///     MeshEndpoint::Chip { row: 3, col: 2 },
/// );
/// // injection + 3 vertical hops, no horizontal detour
/// assert_eq!(path.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    rows: u32,
    cols: u32,
}

impl Mesh {
    /// Creates a mesh of `rows × cols` chips.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be nonzero");
        Mesh { rows, cols }
    }

    /// Rows (ways).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Columns (channels / controllers).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of directed links:
    /// `cols` injection + `cols` ejection + 2·vertical + 2·horizontal.
    pub fn link_count(&self) -> usize {
        let vertical = (self.rows - 1) * self.cols;
        let horizontal = self.rows * (self.cols - 1);
        (2 * self.cols + 2 * vertical + 2 * horizontal) as usize
    }

    fn inject(&self, c: u32) -> LinkId {
        LinkId(c as usize)
    }

    fn eject(&self, c: u32) -> LinkId {
        LinkId((self.cols + c) as usize)
    }

    /// Link from `(r, c)` to `(r+1, c)`.
    fn v_down(&self, r: u32, c: u32) -> LinkId {
        debug_assert!(r + 1 < self.rows);
        LinkId((2 * self.cols + r * self.cols + c) as usize)
    }

    /// Link from `(r+1, c)` to `(r, c)`.
    fn v_up(&self, r: u32, c: u32) -> LinkId {
        debug_assert!(r + 1 < self.rows);
        let base = 2 * self.cols + (self.rows - 1) * self.cols;
        LinkId((base + r * self.cols + c) as usize)
    }

    /// Link from `(r, c)` to `(r, c+1)`.
    fn h_right(&self, r: u32, c: u32) -> LinkId {
        debug_assert!(c + 1 < self.cols);
        let base = 2 * self.cols + 2 * (self.rows - 1) * self.cols;
        LinkId((base + r * (self.cols - 1) + c) as usize)
    }

    /// Link from `(r, c+1)` to `(r, c)`.
    fn h_left(&self, r: u32, c: u32) -> LinkId {
        debug_assert!(c + 1 < self.cols);
        let base = 2 * self.cols + 2 * (self.rows - 1) * self.cols + self.rows * (self.cols - 1);
        LinkId((base + r * (self.cols - 1) + c) as usize)
    }

    fn x_route(&self, row: u32, from: u32, to: u32, out: &mut Vec<LinkId>) {
        if from <= to {
            for c in from..to {
                out.push(self.h_right(row, c));
            }
        } else {
            for c in (to..from).rev() {
                out.push(self.h_left(row, c));
            }
        }
    }

    fn y_route(&self, col: u32, from: u32, to: u32, out: &mut Vec<LinkId>) {
        if from <= to {
            for r in from..to {
                out.push(self.v_down(r, col));
            }
        } else {
            for r in (to..from).rev() {
                out.push(self.v_up(r, col));
            }
        }
    }

    /// The XY route between two endpoints, as the ordered list of directed
    /// links traversed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or both endpoints are
    /// controllers (controller-to-controller traffic rides the SoC, not the
    /// mesh).
    pub fn route(&self, src: MeshEndpoint, dst: MeshEndpoint) -> Vec<LinkId> {
        let mut path = Vec::new();
        match (src, dst) {
            (MeshEndpoint::Controller(c), MeshEndpoint::Chip { row, col }) => {
                assert!(c < self.cols && row < self.rows && col < self.cols);
                path.push(self.inject(c));
                self.x_route(0, c, col, &mut path);
                self.y_route(col, 0, row, &mut path);
            }
            (MeshEndpoint::Chip { row, col }, MeshEndpoint::Controller(c)) => {
                assert!(c < self.cols && row < self.rows && col < self.cols);
                // X along the chip's row toward the controller's column,
                // then Y up to the edge, then eject.
                self.x_route(row, col, c, &mut path);
                self.y_route(c, row, 0, &mut path);
                path.push(self.eject(c));
            }
            (MeshEndpoint::Chip { row, col }, MeshEndpoint::Chip { row: r2, col: c2 }) => {
                assert!(row < self.rows && col < self.cols && r2 < self.rows && c2 < self.cols);
                self.x_route(row, col, c2, &mut path);
                self.y_route(c2, row, r2, &mut path);
            }
            (MeshEndpoint::Controller(_), MeshEndpoint::Controller(_)) => {
                panic!("controller-to-controller traffic does not use the mesh")
            }
        }
        path
    }

    /// Hop count of the XY route (number of links traversed).
    pub fn hops(&self, src: MeshEndpoint, dst: MeshEndpoint) -> usize {
        self.route(src, dst).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn link_count_for_8x8() {
        let m = Mesh::new(8, 8);
        // 8 inject + 8 eject + 2*56 vertical + 2*56 horizontal = 240.
        assert_eq!(m.link_count(), 240);
    }

    #[test]
    fn all_link_ids_dense_and_unique() {
        let m = Mesh::new(4, 3);
        let mut seen = HashSet::new();
        for c in 0..3 {
            seen.insert(m.inject(c));
            seen.insert(m.eject(c));
        }
        for r in 0..3 {
            for c in 0..3 {
                seen.insert(m.v_down(r, c));
                seen.insert(m.v_up(r, c));
            }
        }
        for r in 0..4 {
            for c in 0..2 {
                seen.insert(m.h_right(r, c));
                seen.insert(m.h_left(r, c));
            }
        }
        assert_eq!(seen.len(), m.link_count());
        assert!(seen.iter().all(|l| l.0 < m.link_count()));
    }

    #[test]
    fn vertical_only_route_for_own_column() {
        let m = Mesh::new(8, 8);
        let path = m.route(
            MeshEndpoint::Controller(3),
            MeshEndpoint::Chip { row: 5, col: 3 },
        );
        assert_eq!(path.len(), 1 + 5); // inject + 5 down hops
    }

    #[test]
    fn xy_route_with_detour() {
        let m = Mesh::new(8, 8);
        let path = m.route(
            MeshEndpoint::Controller(0),
            MeshEndpoint::Chip { row: 2, col: 4 },
        );
        // inject + 4 horizontal + 2 vertical
        assert_eq!(path.len(), 7);
    }

    #[test]
    fn return_route_ends_with_ejection() {
        let m = Mesh::new(8, 8);
        let path = m.route(
            MeshEndpoint::Chip { row: 2, col: 4 },
            MeshEndpoint::Controller(4),
        );
        assert_eq!(path.len(), 3); // 2 up + eject
        assert_eq!(*path.last().unwrap(), m.eject(4));
    }

    #[test]
    fn chip_to_chip_route() {
        let m = Mesh::new(8, 8);
        let path = m.route(
            MeshEndpoint::Chip { row: 1, col: 1 },
            MeshEndpoint::Chip { row: 3, col: 6 },
        );
        assert_eq!(path.len(), 5 + 2);
    }

    #[test]
    fn zero_hop_chip_to_itself() {
        let m = Mesh::new(4, 4);
        let p = m.route(
            MeshEndpoint::Chip { row: 1, col: 1 },
            MeshEndpoint::Chip { row: 1, col: 1 },
        );
        assert!(p.is_empty());
    }

    #[test]
    fn pin_constraint_quarters_link_width() {
        let pc = MeshParams::pin_constrained();
        let un = MeshParams::unconstrained();
        assert_eq!(pc.link.width_bits * 4, un.link.width_bits);
        // 16 KB on a 2-bit link takes 4x the 8-bit time.
        assert_eq!(
            pc.link.payload_time(16 * 1024),
            un.link.payload_time(16 * 1024) * 4
        );
    }

    #[test]
    #[should_panic(expected = "controller-to-controller")]
    fn controller_pair_rejected() {
        Mesh::new(2, 2).route(MeshEndpoint::Controller(0), MeshEndpoint::Controller(1));
    }
}
