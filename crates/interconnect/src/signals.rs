//! ONFI NV-DDR4 signal inventory (the paper's Table I).
//!
//! The pin accounting here grounds the paper's central bandwidth argument:
//! of the 18 interface signals, only 8 (`DQ[7:0]`) carry payload in the
//! conventional dedicated-signal interface; the packetized interface
//! repurposes the control pins (keeping only `CE` and `R/B` for
//! handshaking) to roughly double the effective data width.

use core::fmt;

/// The electrical role of an interface signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Dedicated control signal (CLE, ALE, …).
    Control,
    /// Data/strobe signal that carries or clocks payload.
    DataIo,
}

/// One named interface signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal {
    /// Signal mnemonic (e.g. `"CLE"`).
    pub name: &'static str,
    /// Electrical role.
    pub kind: SignalKind,
    /// Number of physical pins (e.g. 8 for `DQ[7:0]`).
    pub pins: u32,
    /// Human-readable description from ONFI.
    pub description: &'static str,
    /// Whether the packetized interface still needs this signal as a
    /// dedicated pin (`CE` per chip and `R/B` status, §IV-A).
    pub kept_by_pssd: bool,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.description)
    }
}

/// The NV-DDR4 signal set of Table I.
pub fn nv_ddr4_signals() -> &'static [Signal] {
    const S: &[Signal] = &[
        Signal {
            name: "CLE",
            kind: SignalKind::Control,
            pins: 1,
            description: "Command Latch Enable",
            kept_by_pssd: false,
        },
        Signal {
            name: "ALE",
            kind: SignalKind::Control,
            pins: 1,
            description: "Address Latch Enable",
            kept_by_pssd: false,
        },
        Signal {
            name: "RE",
            kind: SignalKind::Control,
            pins: 1,
            description: "Read Enable",
            kept_by_pssd: false,
        },
        Signal {
            name: "RE_c",
            kind: SignalKind::Control,
            pins: 1,
            description: "Read Enable Complement",
            kept_by_pssd: false,
        },
        Signal {
            name: "WE",
            kind: SignalKind::Control,
            pins: 1,
            description: "Write Enable",
            kept_by_pssd: false,
        },
        Signal {
            name: "WP",
            kind: SignalKind::Control,
            pins: 1,
            description: "Write Protection",
            kept_by_pssd: false,
        },
        Signal {
            name: "CE",
            kind: SignalKind::Control,
            pins: 1,
            description: "Chip Enable",
            kept_by_pssd: true,
        },
        Signal {
            name: "R/B_n",
            kind: SignalKind::Control,
            pins: 1,
            description: "Ready/Busy",
            kept_by_pssd: true,
        },
        Signal {
            name: "DQ[7:0]",
            kind: SignalKind::DataIo,
            pins: 8,
            description: "Data Input/Outputs",
            kept_by_pssd: true,
        },
        Signal {
            name: "DQS",
            kind: SignalKind::DataIo,
            pins: 1,
            description: "Data Strobe",
            kept_by_pssd: true,
        },
        Signal {
            name: "DQS_c",
            kind: SignalKind::DataIo,
            pins: 1,
            description: "Data Strobe Complement",
            kept_by_pssd: true,
        },
    ];
    S
}

/// Total pin count of the NV-DDR4 interface.
pub fn total_pins() -> u32 {
    nv_ddr4_signals().iter().map(|s| s.pins).sum()
}

/// Pins that carry payload in the conventional interface (`DQ` only).
pub fn conventional_payload_pins() -> u32 {
    nv_ddr4_signals()
        .iter()
        .filter(|s| s.name.starts_with("DQ["))
        .map(|s| s.pins)
        .sum()
}

/// Pins freed by packetization (control pins not kept as dedicated signals),
/// which pSSD repurposes as extra data width.
pub fn pins_freed_by_packetization() -> u32 {
    nv_ddr4_signals()
        .iter()
        .filter(|s| !s.kept_by_pssd)
        .map(|s| s.pins)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_signals_ten_payload_capable() {
        // Table I / §I: 18 pins total, 10 used for data+strobe.
        assert_eq!(total_pins(), 18);
        let data_pins: u32 = nv_ddr4_signals()
            .iter()
            .filter(|s| s.kind == SignalKind::DataIo)
            .map(|s| s.pins)
            .sum();
        assert_eq!(data_pins, 10);
    }

    #[test]
    fn dq_is_eight_bits() {
        assert_eq!(conventional_payload_pins(), 8);
    }

    #[test]
    fn packetization_frees_six_control_pins() {
        // CLE, ALE, RE, RE_c, WE, WP become available; CE and R/B stay.
        assert_eq!(pins_freed_by_packetization(), 6);
        let kept: Vec<_> = nv_ddr4_signals()
            .iter()
            .filter(|s| s.kind == SignalKind::Control && s.kept_by_pssd)
            .map(|s| s.name)
            .collect();
        assert_eq!(kept, vec!["CE", "R/B_n"]);
    }
}
