//! Synthetic workload generators (the paper's Figs 16–18 drive the SSD with
//! sequential/random read/write streams at a controlled concurrency).

use nssd_host::{IoOp, IoRequest};
use nssd_sim::SimTime;
use nssd_sim::{DetRng, Rng};

use crate::Trace;

/// The four synthetic access patterns of Fig 16/17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticPattern {
    /// Ascending addresses, reads.
    SequentialRead,
    /// Ascending addresses, writes.
    SequentialWrite,
    /// Uniform random addresses, reads.
    RandomRead,
    /// Uniform random addresses, writes.
    RandomWrite,
}

impl SyntheticPattern {
    /// The operation this pattern issues.
    pub fn op(self) -> IoOp {
        match self {
            SyntheticPattern::SequentialRead | SyntheticPattern::RandomRead => IoOp::Read,
            SyntheticPattern::SequentialWrite | SyntheticPattern::RandomWrite => IoOp::Write,
        }
    }

    /// Whether addresses ascend sequentially.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            SyntheticPattern::SequentialRead | SyntheticPattern::SequentialWrite
        )
    }

    /// All four patterns, in the paper's presentation order.
    pub fn all() -> [SyntheticPattern; 4] {
        [
            SyntheticPattern::SequentialRead,
            SyntheticPattern::RandomRead,
            SyntheticPattern::SequentialWrite,
            SyntheticPattern::RandomWrite,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SyntheticPattern::SequentialRead => "seq-read",
            SyntheticPattern::RandomRead => "rand-read",
            SyntheticPattern::SequentialWrite => "seq-write",
            SyntheticPattern::RandomWrite => "rand-write",
        }
    }
}

/// Parameters for a synthetic request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Access pattern.
    pub pattern: SyntheticPattern,
    /// Bytes per request (the paper uses 64 KB with multi-plane commands).
    pub request_bytes: u32,
    /// Number of requests to generate.
    pub requests: usize,
    /// Addressable footprint in bytes (requests wrap within it).
    pub footprint_bytes: u64,
    /// RNG seed for random patterns.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The paper's synthetic setup: 64 KB requests over `footprint_bytes`.
    pub fn paper(pattern: SyntheticPattern, requests: usize, footprint_bytes: u64) -> Self {
        SyntheticSpec {
            pattern,
            request_bytes: 64 * 1024,
            requests,
            footprint_bytes,
            seed: 0xD5D,
        }
    }

    /// Generates the request list with zero arrival times: a closed-loop
    /// driver controls concurrency, so arrivals carry no information.
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot hold a single request.
    pub fn generate(&self) -> Trace {
        assert!(
            self.footprint_bytes >= self.request_bytes as u64,
            "footprint smaller than one request"
        );
        let mut rng = DetRng::seed_from_u64(self.seed);
        let slots = self.footprint_bytes / self.request_bytes as u64;
        let mut trace = Trace::new(self.pattern.label());
        let mut cursor = 0u64;
        for _ in 0..self.requests {
            let slot = if self.pattern.is_sequential() {
                let s = cursor;
                cursor = (cursor + 1) % slots;
                s
            } else {
                rng.gen_range(0..slots)
            };
            trace.push(IoRequest::new(
                self.pattern.op(),
                slot * self.request_bytes as u64,
                self.request_bytes,
                SimTime::ZERO,
            ));
        }
        trace
    }
}

/// A tunable mixed stream: the read/write mix and the sequentiality are
/// explicit knobs with measurable targets, unlike [`SyntheticPattern`]'s
/// four fixed corners.
///
/// * `read_ratio` — each request is a read with this probability, so over
///   `requests` draws the observed read fraction converges on the knob
///   (binomial standard error `sqrt(r(1-r)/n)`).
/// * `mean_run_length` — after every request the stream jumps to a fresh
///   uniform address with probability `1 / mean_run_length`, otherwise it
///   continues at the next sequential slot; run lengths are therefore
///   geometric with exactly this mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedSpec {
    /// Probability a request is a read (0.0 = pure write, 1.0 = pure read).
    pub read_ratio: f64,
    /// Mean sequential run length in requests (1.0 = fully random).
    pub mean_run_length: f64,
    /// Bytes per request.
    pub request_bytes: u32,
    /// Number of requests to generate.
    pub requests: usize,
    /// Addressable footprint in bytes.
    pub footprint_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl MixedSpec {
    /// Generates the request list with zero arrival times (closed-loop
    /// drivers control concurrency).
    ///
    /// # Panics
    ///
    /// Panics if `read_ratio` is outside `[0, 1]`, `mean_run_length < 1`,
    /// or the footprint cannot hold a single request.
    pub fn generate(&self) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.read_ratio),
            "read_ratio must be in [0, 1]"
        );
        assert!(
            self.mean_run_length >= 1.0 && self.mean_run_length.is_finite(),
            "mean_run_length must be finite and >= 1"
        );
        assert!(
            self.footprint_bytes >= self.request_bytes as u64,
            "footprint smaller than one request"
        );
        let mut rng = DetRng::seed_from_u64(self.seed);
        let slots = self.footprint_bytes / self.request_bytes as u64;
        let jump_p = 1.0 / self.mean_run_length;
        let mut trace = Trace::new("mixed");
        let mut cursor = rng.gen_range(0..slots);
        for i in 0..self.requests {
            // The first request of a run is itself the jump target.
            if i == 0 || rng.gen_range(0.0..1.0) < jump_p {
                cursor = rng.gen_range(0..slots);
            } else {
                cursor = (cursor + 1) % slots;
            }
            let op = if rng.gen_range(0.0..1.0) < self.read_ratio {
                IoOp::Read
            } else {
                IoOp::Write
            };
            trace.push(IoRequest::new(
                op,
                cursor * self.request_bytes as u64,
                self.request_bytes,
                SimTime::ZERO,
            ));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ascends_and_wraps() {
        let spec = SyntheticSpec {
            pattern: SyntheticPattern::SequentialWrite,
            request_bytes: 64 * 1024,
            requests: 5,
            footprint_bytes: 3 * 64 * 1024,
            seed: 0,
        };
        let t = spec.generate();
        let offsets: Vec<u64> = t.iter().map(|r| r.offset).collect();
        assert_eq!(
            offsets,
            vec![0, 65536, 131072, 0, 65536],
            "wraps at the footprint"
        );
        assert!(t.iter().all(|r| !r.op.is_read()));
    }

    #[test]
    fn random_is_aligned_and_in_bounds() {
        let spec = SyntheticSpec::paper(SyntheticPattern::RandomRead, 1000, 1 << 24);
        let t = spec.generate();
        for r in &t {
            assert_eq!(r.offset % (64 * 1024), 0);
            assert!(r.offset + r.len as u64 <= 1 << 24);
            assert!(r.op.is_read());
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = SyntheticSpec::paper(SyntheticPattern::RandomWrite, 100, 1 << 22).generate();
        let b = SyntheticSpec::paper(SyntheticPattern::RandomWrite, 100, 1 << 22).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_and_ops() {
        assert_eq!(SyntheticPattern::all().len(), 4);
        assert_eq!(SyntheticPattern::SequentialRead.label(), "seq-read");
        assert!(SyntheticPattern::RandomRead.op().is_read());
        assert!(SyntheticPattern::SequentialWrite.is_sequential());
        assert!(!SyntheticPattern::RandomWrite.is_sequential());
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn tiny_footprint_rejected() {
        SyntheticSpec::paper(SyntheticPattern::RandomRead, 1, 1024).generate();
    }

    #[test]
    fn mixed_is_seed_deterministic_and_in_bounds() {
        let spec = MixedSpec {
            read_ratio: 0.7,
            mean_run_length: 4.0,
            request_bytes: 4096,
            requests: 500,
            footprint_bytes: 1 << 22,
            seed: 77,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        for r in &a {
            assert_eq!(r.offset % 4096, 0);
            assert!(r.offset + r.len as u64 <= 1 << 22);
        }
    }

    #[test]
    fn mixed_extremes_are_pure() {
        let mut spec = MixedSpec {
            read_ratio: 1.0,
            mean_run_length: 1.0,
            request_bytes: 4096,
            requests: 200,
            footprint_bytes: 1 << 22,
            seed: 1,
        };
        assert!(spec.generate().iter().all(|r| r.op.is_read()));
        spec.read_ratio = 0.0;
        assert!(spec.generate().iter().all(|r| !r.op.is_read()));
    }

    #[test]
    #[should_panic(expected = "read_ratio")]
    fn mixed_rejects_bad_ratio() {
        MixedSpec {
            read_ratio: 1.5,
            mean_run_length: 2.0,
            request_bytes: 4096,
            requests: 1,
            footprint_bytes: 1 << 20,
            seed: 0,
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "mean_run_length")]
    fn mixed_rejects_sub_one_run_length() {
        MixedSpec {
            read_ratio: 0.5,
            mean_run_length: 0.5,
            request_bytes: 4096,
            requests: 1,
            footprint_bytes: 1 << 20,
            seed: 0,
        }
        .generate();
    }
}
