//! Importers for public block-trace formats.
//!
//! The paper's traces come from enterprise collections that ship in
//! CSV-like formats; the most common publicly-available equivalent is the
//! MSR Cambridge format, supported here so users can replay real traces:
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,usr,0,Read,7014609920,24576,41286
//! ```
//!
//! `Timestamp` is a Windows FILETIME (100 ns ticks since 1601); offsets and
//! sizes are bytes. Timestamps are rebased so the first record arrives at
//! t = 0.

use core::fmt;

use nssd_host::{IoOp, IoRequest};
use nssd_sim::SimTime;

use crate::Trace;

/// Errors from MSR-format parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsrParseError {
    /// A line had fewer than 6 comma-separated fields.
    MissingFields {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// The Type field was neither `Read` nor `Write`.
    BadType {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: String,
    },
    /// No records were found.
    Empty,
}

impl fmt::Display for MsrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrParseError::MissingFields { line } => {
                write!(f, "line {line}: expected 7 comma-separated MSR fields")
            }
            MsrParseError::BadNumber { line, field } => {
                write!(f, "line {line}: invalid number in field `{field}`")
            }
            MsrParseError::BadType { line, value } => {
                write!(f, "line {line}: type must be Read or Write, got `{value}`")
            }
            MsrParseError::Empty => f.write_str("no records in MSR input"),
        }
    }
}

impl std::error::Error for MsrParseError {}

/// Options controlling an MSR import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsrImportOptions {
    /// Keep only this disk number (`None` = all disks, offsets as-is).
    pub disk: Option<u32>,
    /// Wrap offsets into this many bytes (`None` = keep raw offsets; set
    /// this to the simulated device's logical capacity).
    pub wrap_bytes: Option<u64>,
    /// Cap the number of records imported.
    pub max_records: Option<usize>,
}

/// Parses MSR Cambridge CSV text into a [`Trace`].
///
/// # Errors
///
/// Returns [`MsrParseError`] on malformed input or when nothing matches
/// the filter.
///
/// # Examples
///
/// ```
/// use nssd_workloads::{import_msr, MsrImportOptions};
///
/// let csv = "\
/// 128166372003061629,usr,0,Read,7014609920,24576,41286
/// 128166372005000000,usr,0,Write,1048576,8192,1000";
/// let trace = import_msr(csv, "usr-0", MsrImportOptions::default())?;
/// assert_eq!(trace.len(), 2);
/// // First record rebased to t=0; second ~193.8 µs later.
/// assert_eq!(trace.records()[0].at.as_ns(), 0);
/// # Ok::<(), nssd_workloads::MsrParseError>(())
/// ```
pub fn import_msr(
    text: &str,
    name: &str,
    options: MsrImportOptions,
) -> Result<Trace, MsrParseError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Skip a header row if present.
        if idx == 0 && line.to_ascii_lowercase().starts_with("timestamp") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 6 {
            return Err(MsrParseError::MissingFields { line: line_no });
        }
        let ticks: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| MsrParseError::BadNumber {
                line: line_no,
                field: "Timestamp",
            })?;
        let disk: u32 = fields[2]
            .trim()
            .parse()
            .map_err(|_| MsrParseError::BadNumber {
                line: line_no,
                field: "DiskNumber",
            })?;
        if let Some(want) = options.disk {
            if disk != want {
                continue;
            }
        }
        let op = match fields[3].trim() {
            t if t.eq_ignore_ascii_case("read") => IoOp::Read,
            t if t.eq_ignore_ascii_case("write") => IoOp::Write,
            other => {
                return Err(MsrParseError::BadType {
                    line: line_no,
                    value: other.to_string(),
                })
            }
        };
        let offset: u64 = fields[4]
            .trim()
            .parse()
            .map_err(|_| MsrParseError::BadNumber {
                line: line_no,
                field: "Offset",
            })?;
        let size: u64 = fields[5]
            .trim()
            .parse()
            .map_err(|_| MsrParseError::BadNumber {
                line: line_no,
                field: "Size",
            })?;
        if size == 0 {
            continue; // zero-length records occur in some collections
        }
        records.push((ticks, op, offset, size));
        if let Some(max) = options.max_records {
            if records.len() >= max {
                break;
            }
        }
    }
    if records.is_empty() {
        return Err(MsrParseError::Empty);
    }
    records.sort_by_key(|r| r.0);
    let t0 = records[0].0;
    let mut trace = Trace::new(name);
    for (ticks, op, mut offset, size) in records {
        // FILETIME ticks are 100 ns.
        let at = SimTime::from_ns((ticks - t0) * 100);
        if let Some(wrap) = options.wrap_bytes {
            offset %= wrap.saturating_sub(size).max(1);
        }
        let size = size.min(u32::MAX as u64) as u32;
        trace.push(IoRequest::new(op, offset, size, at));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372003500000,usr,1,Write,4096,4096,900
128166372005000000,usr,0,Write,1048576,8192,1000
128166372004000000,usr,0,Read,2097152,4096,800";

    #[test]
    fn parses_and_rebases_time() {
        let t = import_msr(SAMPLE, "usr", MsrImportOptions::default()).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.records()[0].at, SimTime::ZERO);
        // Sorted by timestamp: the out-of-order read lands third.
        assert_eq!(t.records()[2].offset, 2097152);
        // 100ns ticks: (5000000-3061629)... delta of record 2 vs 1.
        assert!(t.duration().as_ns() > 0);
    }

    #[test]
    fn disk_filter() {
        let t = import_msr(
            SAMPLE,
            "usr-0",
            MsrImportOptions {
                disk: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        let t1 = import_msr(
            SAMPLE,
            "usr-1",
            MsrImportOptions {
                disk: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t1.len(), 1);
    }

    #[test]
    fn wrap_confines_offsets() {
        let t = import_msr(
            SAMPLE,
            "usr",
            MsrImportOptions {
                wrap_bytes: Some(1 << 20),
                ..Default::default()
            },
        )
        .unwrap();
        for r in &t {
            assert!(r.offset + r.len as u64 <= (1 << 20) + r.len as u64);
            assert!(r.offset < 1 << 20);
        }
    }

    #[test]
    fn max_records_caps() {
        let t = import_msr(
            SAMPLE,
            "usr",
            MsrImportOptions {
                max_records: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn header_and_comments_skipped() {
        let text =
            format!("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n# c\n{SAMPLE}");
        let t = import_msr(&text, "usr", MsrImportOptions::default()).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(
            import_msr("1,h,0,Flush,0,512,1", "x", Default::default()),
            Err(MsrParseError::BadType {
                line: 1,
                value: "Flush".into()
            })
        );
        assert_eq!(
            import_msr("abc,h,0,Read,0,512,1", "x", Default::default()),
            Err(MsrParseError::BadNumber {
                line: 1,
                field: "Timestamp"
            })
        );
        assert_eq!(
            import_msr("1,h,0,Read\n", "x", Default::default()),
            Err(MsrParseError::MissingFields { line: 1 })
        );
        assert_eq!(
            import_msr("", "x", Default::default()),
            Err(MsrParseError::Empty)
        );
    }
}
