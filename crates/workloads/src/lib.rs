//! Workload substrate for the Networked SSD reproduction.
//!
//! * [`Trace`] — an ordered block-level I/O trace with statistics and a
//!   plain-text codec.
//! * [`Zipf`] — skewed address sampling with scattered hot items.
//! * [`SyntheticSpec`]/[`SyntheticPattern`] — the sequential/random
//!   read/write streams of Figs 16–18.
//! * [`PaperWorkload`]/[`generate_trace`] — the named suite standing in for
//!   the paper's enterprise traces, with per-workload documented
//!   characteristics (read mix, skew, burstiness, idleness).
//!
//! ```
//! use nssd_workloads::PaperWorkload;
//!
//! let trace = PaperWorkload::Exchange1.generate(1000, 1 << 28, 42);
//! assert_eq!(trace.name(), "exchange-1");
//! assert!((trace.read_fraction() - 0.55).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod import;
mod stats;
mod suite;
mod synthetic;
mod trace;
mod zipf;

pub use import::{import_msr, MsrImportOptions, MsrParseError};
pub use stats::TraceStats;
pub use suite::{generate_trace, PaperWorkload, WorkloadSpec, REFERENCE_BYTES_PER_SEC};
pub use synthetic::{SyntheticPattern, SyntheticSpec};
pub use trace::{Trace, TraceParseError};
pub use zipf::Zipf;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn trace_text_roundtrip(requests in 1usize..200, seed in 0u64..1000) {
            let t = PaperWorkload::YcsbA.generate(requests, 1 << 26, seed);
            let back: Trace = t.to_text().parse().unwrap();
            prop_assert_eq!(back, t);
        }

        #[test]
        fn zipf_in_bounds(n in 1u64..100_000, s in 0.0f64..2.0, seed in 0u64..100) {
            let z = Zipf::new(n, s, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn synthetic_request_counts(requests in 1usize..500) {
            let t = SyntheticSpec::paper(SyntheticPattern::RandomRead, requests, 1 << 26).generate();
            prop_assert_eq!(t.len(), requests);
        }

        #[test]
        fn generated_traces_are_time_ordered(seed in 0u64..500) {
            let t = PaperWorkload::Exchange0.generate(300, 1 << 26, seed);
            for w in t.records().windows(2) {
                prop_assert!(w[1].at >= w[0].at);
            }
        }
    }
}
