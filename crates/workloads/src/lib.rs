//! Workload substrate for the Networked SSD reproduction.
//!
//! * [`Trace`] — an ordered block-level I/O trace with statistics and a
//!   plain-text codec.
//! * [`Zipf`] — skewed address sampling with scattered hot items.
//! * [`SyntheticSpec`]/[`SyntheticPattern`] — the sequential/random
//!   read/write streams of Figs 16–18.
//! * [`PaperWorkload`]/[`generate_trace`] — the named suite standing in for
//!   the paper's enterprise traces, with per-workload documented
//!   characteristics (read mix, skew, burstiness, idleness).
//! * [`TenantMix`]/[`TenantSpec`] — multi-tenant mixes pairing QoS
//!   parameters with per-tenant arrival processes over partitioned
//!   address space.
//!
//! ```
//! use nssd_workloads::PaperWorkload;
//!
//! let trace = PaperWorkload::Exchange1.generate(1000, 1 << 28, 42);
//! assert_eq!(trace.name(), "exchange-1");
//! assert!((trace.read_fraction() - 0.55).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod import;
mod stats;
mod streaming;
mod suite;
mod synthetic;
mod tenants;
mod trace;
mod zipf;

pub use import::{import_msr, MsrImportOptions, MsrParseError};
pub use stats::{exact_percentile, tail_resolvable, tail_support, TraceStats};
pub use streaming::{WindowedStats, STREAMING_ERROR_BOUND, WINDOW_BUCKETS};
pub use suite::{generate_trace, PaperWorkload, WorkloadSpec, REFERENCE_BYTES_PER_SEC};
pub use synthetic::{MixedSpec, SyntheticPattern, SyntheticSpec};
pub use tenants::{TenantMix, TenantSpec, TenantWorkload};
pub use trace::{Trace, TraceParseError};
pub use zipf::Zipf;

#[cfg(test)]
const CASES: usize = if cfg!(feature = "heavy-tests") {
    1024
} else {
    32
};

#[cfg(test)]
mod proptests {
    use super::*;
    use nssd_sim::{DetRng, Rng};

    #[test]
    fn trace_text_roundtrip() {
        let mut rng = DetRng::seed_from_u64(0x77AC3);
        for _ in 0..CASES {
            let requests = rng.gen_range(1..200usize);
            let seed = rng.gen_range(0..1000u64);
            let t = PaperWorkload::YcsbA.generate(requests, 1 << 26, seed);
            let back: Trace = t.to_text().parse().unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn zipf_in_bounds() {
        let mut rng = DetRng::seed_from_u64(0x21BF);
        for _ in 0..CASES {
            let n = rng.gen_range(1..100_000u64);
            let s = rng.gen_range(0.0..2.0f64);
            let seed = rng.gen_range(0..100u64);
            let z = Zipf::new(n, s, seed);
            let mut sample_rng = DetRng::seed_from_u64(seed);
            for _ in 0..50 {
                assert!(z.sample(&mut sample_rng) < n);
            }
        }
    }

    #[test]
    fn synthetic_request_counts() {
        let mut rng = DetRng::seed_from_u64(0x5C);
        for _ in 0..CASES {
            let requests = rng.gen_range(1..500usize);
            let t =
                SyntheticSpec::paper(SyntheticPattern::RandomRead, requests, 1 << 26).generate();
            assert_eq!(t.len(), requests);
        }
    }

    #[test]
    fn generated_traces_are_time_ordered() {
        let mut rng = DetRng::seed_from_u64(0x08D);
        for _ in 0..CASES {
            let seed = rng.gen_range(0..500u64);
            let t = PaperWorkload::Exchange0.generate(300, 1 << 26, seed);
            for w in t.records().windows(2) {
                assert!(w[1].at >= w[0].at);
            }
        }
    }
}
