//! Block I/O traces: container, statistics, and a plain-text codec.

use core::fmt;
use std::str::FromStr;

use nssd_host::{IoOp, IoRequest};
use nssd_sim::SimTime;

/// An ordered block-level I/O trace.
///
/// # Examples
///
/// ```
/// use nssd_host::{IoOp, IoRequest};
/// use nssd_sim::SimTime;
/// use nssd_workloads::Trace;
///
/// let mut t = Trace::new("demo");
/// t.push(IoRequest::new(IoOp::Write, 0, 4096, SimTime::ZERO));
/// t.push(IoRequest::new(IoOp::Read, 0, 4096, SimTime::from_us(10)));
/// assert_eq!(t.len(), 2);
/// assert!((t.read_fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<IoRequest>,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record's arrival time precedes the previous record's
    /// (traces are time-ordered).
    pub fn push(&mut self, r: IoRequest) {
        if let Some(last) = self.records.last() {
            assert!(r.at >= last.at, "trace records must be time-ordered");
        }
        self.records.push(r);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in arrival order.
    pub fn records(&self) -> &[IoRequest] {
        &self.records
    }

    /// Consumes the trace into its arrival-ordered record list without
    /// copying — the zero-clone path into [`nssd_sim`]-driven engines for
    /// traces generated per run.
    pub fn into_records(self) -> Vec<IoRequest> {
        self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, IoRequest> {
        self.records.iter()
    }

    /// Fraction of requests that are reads (0 when empty).
    pub fn read_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.op.is_read()).count() as f64 / self.records.len() as f64
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len as u64).sum()
    }

    /// Arrival span from first to last record.
    pub fn duration(&self) -> SimTime {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.at - a.at,
            _ => SimTime::ZERO,
        }
    }

    /// Highest byte address touched plus one (the footprint bound).
    pub fn footprint_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.offset + r.len as u64)
            .max()
            .unwrap_or(0)
    }

    /// Interleaves two traces in a fixed `a_run`/`b_run` round-robin
    /// pattern, ignoring timestamps (all records arrive at t = 0; intended
    /// for closed-loop driving, e.g. a 70/30 read/write mix built from two
    /// pure generators).
    ///
    /// # Panics
    ///
    /// Panics if both run lengths are zero.
    pub fn interleave(
        name: impl Into<String>,
        a: &Trace,
        a_run: usize,
        b: &Trace,
        b_run: usize,
    ) -> Trace {
        assert!(a_run + b_run > 0, "at least one run length must be nonzero");
        let mut out = Trace::new(name);
        let (ra, rb) = (a.records(), b.records());
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < ra.len() || ib < rb.len() {
            for _ in 0..a_run {
                if ia < ra.len() {
                    let mut r = ra[ia];
                    r.at = nssd_sim::SimTime::ZERO;
                    out.push(r);
                    ia += 1;
                }
            }
            for _ in 0..b_run {
                if ib < rb.len() {
                    let mut r = rb[ib];
                    r.at = nssd_sim::SimTime::ZERO;
                    out.push(r);
                    ib += 1;
                }
            }
        }
        out
    }

    /// Serializes to the plain-text trace format: a `# name` header line
    /// followed by `<ns> <R|W> <offset> <len>` lines.
    pub fn to_text(&self) -> String {
        let mut s = format!("# {}\n", self.name);
        for r in &self.records {
            s.push_str(&format!(
                "{} {} {} {}\n",
                r.at.as_ns(),
                r.op,
                r.offset,
                r.len
            ));
        }
        s
    }
}

impl FromStr for Trace {
    type Err = TraceParseError;

    /// Parses the plain-text format produced by [`Trace::to_text`].
    fn from_str(s: &str) -> Result<Self, TraceParseError> {
        let mut name = String::from("unnamed");
        let mut named = false;
        let mut records = Vec::new();
        for (idx, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if !named {
                    name = rest.trim().to_string();
                    named = true;
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut next = |field: &'static str| {
                parts.next().ok_or(TraceParseError::MissingField {
                    line: idx + 1,
                    field,
                })
            };
            let at: u64 = next("time")?
                .parse()
                .map_err(|_| TraceParseError::BadNumber { line: idx + 1 })?;
            let op = match next("op")? {
                "R" | "r" => IoOp::Read,
                "W" | "w" => IoOp::Write,
                _ => return Err(TraceParseError::BadOp { line: idx + 1 }),
            };
            let offset: u64 = next("offset")?
                .parse()
                .map_err(|_| TraceParseError::BadNumber { line: idx + 1 })?;
            let len: u32 = next("len")?
                .parse()
                .map_err(|_| TraceParseError::BadNumber { line: idx + 1 })?;
            if len == 0 {
                return Err(TraceParseError::BadNumber { line: idx + 1 });
            }
            records.push(IoRequest::new(op, offset, len, SimTime::from_ns(at)));
        }
        records.sort_by_key(|r| r.at);
        let mut t = Trace::new(name);
        for r in records {
            t.push(r);
        }
        Ok(t)
    }
}

/// Errors from parsing the plain-text trace format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line had too few fields.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The missing field's name.
        field: &'static str,
    },
    /// A numeric field failed to parse or was zero where nonzero is needed.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// The op field was not `R`/`W`.
    BadOp {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::MissingField { line, field } => {
                write!(f, "line {line}: missing field `{field}`")
            }
            TraceParseError::BadNumber { line } => write!(f, "line {line}: invalid number"),
            TraceParseError::BadOp { line } => write!(f, "line {line}: op must be R or W"),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a IoRequest;
    type IntoIter = std::slice::Iter<'a, IoRequest>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.push(IoRequest::new(IoOp::Write, 0, 16384, SimTime::ZERO));
        t.push(IoRequest::new(
            IoOp::Read,
            16384,
            32768,
            SimTime::from_us(5),
        ));
        t.push(IoRequest::new(IoOp::Read, 0, 16384, SimTime::from_us(9)));
        t
    }

    #[test]
    fn stats() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!((t.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.total_bytes(), 65536);
        assert_eq!(t.duration(), SimTime::from_us(9));
        assert_eq!(t.footprint_bytes(), 49152);
    }

    #[test]
    fn into_records_preserves_order_and_content() {
        let t = sample();
        let copied = t.records().to_vec();
        assert_eq!(t.into_records(), copied);
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let text = t.to_text();
        let back: Trace = text.parse().unwrap();
        assert_eq!(back, t);
        assert_eq!(back.name(), "sample");
    }

    #[test]
    fn parse_tolerates_comments_and_blank_lines() {
        let text = "# demo\n\n# comment\n100 R 0 4096\n";
        let t: Trace = text.parse().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(), "demo");
    }

    #[test]
    fn parse_sorts_out_of_order_records() {
        let text = "# x\n200 R 0 512\n100 W 0 512\n";
        let t: Trace = text.parse().unwrap();
        assert_eq!(t.records()[0].op, IoOp::Write);
    }

    #[test]
    fn parse_errors_are_located() {
        let bad: Result<Trace, _> = "# x\n100 Q 0 512\n".parse();
        assert_eq!(bad.unwrap_err(), TraceParseError::BadOp { line: 2 });
        let bad: Result<Trace, _> = "100 R 0\n".parse();
        assert!(matches!(
            bad.unwrap_err(),
            TraceParseError::MissingField {
                line: 1,
                field: "len"
            }
        ));
        let bad: Result<Trace, _> = "abc R 0 512\n".parse();
        assert_eq!(bad.unwrap_err(), TraceParseError::BadNumber { line: 1 });
    }

    #[test]
    fn interleave_round_robins_and_exhausts_both() {
        let mut a = Trace::new("a");
        let mut b = Trace::new("b");
        for i in 0..7u64 {
            a.push(IoRequest::new(
                IoOp::Read,
                i * 512,
                512,
                SimTime::from_ns(i),
            ));
        }
        for i in 0..3u64 {
            b.push(IoRequest::new(
                IoOp::Write,
                i * 512,
                512,
                SimTime::from_ns(i),
            ));
        }
        let m = Trace::interleave("mix", &a, 2, &b, 1);
        assert_eq!(m.len(), 10);
        // Pattern: R R W R R W R R W R (b exhausted after 3 rounds).
        let ops: String = m
            .iter()
            .map(|r| if r.op.is_read() { 'R' } else { 'W' })
            .collect();
        assert_eq!(ops, "RRWRRWRRWR");
        assert!(m.iter().all(|r| r.at == SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "run length")]
    fn interleave_rejects_zero_runs() {
        let t = Trace::new("x");
        Trace::interleave("m", &t, 0, &t, 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_rejected() {
        let mut t = Trace::new("x");
        t.push(IoRequest::new(IoOp::Read, 0, 512, SimTime::from_us(5)));
        t.push(IoRequest::new(IoOp::Read, 0, 512, SimTime::ZERO));
    }
}
