//! Zipfian address sampling.
//!
//! Enterprise read traffic is heavily skewed; the paper's channel-imbalance
//! analysis (Fig 3) rests on exactly this property. [`Zipf`] samples ranks
//! with probability ∝ 1/kˢ via a precomputed CDF and binary search, and
//! scatters ranks across the address space with a multiplicative-hash
//! permutation so the hot set is not clustered at offset zero (which would
//! alias with the FTL's striping order and fake imbalance).

use nssd_sim::Rng;

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A Zipf(s) sampler over `0..n` with hot items scattered pseudo-randomly.
///
/// # Examples
///
/// ```
/// use nssd_workloads::Zipf;
/// use nssd_sim::DetRng;
///
/// let z = Zipf::new(1000, 1.1, 42);
/// let mut rng = DetRng::seed_from_u64(7);
/// let v = z.sample(&mut rng);
/// assert!(v < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    cdf: Vec<f64>,
    /// Odd multiplier for the rank→address permutation.
    mult: u64,
    offset: u64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s` (`s == 0` is
    /// uniform). Hot-item placement is derived from `scatter_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s < 0`, or `s` is not finite.
    pub fn new(n: u64, s: f64, scatter_seed: u64) -> Self {
        assert!(n > 0, "domain must be nonempty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // The multiplier must be coprime with n for the scatter map to be a
        // permutation; walk down from the golden-gamma constant until it is.
        let mut mult = (0x9E37_79B9_7F4A_7C15u64 % n.max(2)).max(1);
        while gcd(mult, n) != 1 {
            mult -= 1;
        }
        Zipf {
            n,
            cdf,
            mult,
            offset: scatter_seed,
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Samples one address in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let rank = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i,
        } as u64;
        self.scatter(rank.min(self.n - 1))
    }

    /// The address that rank `k` (0 = hottest) maps to.
    pub fn scatter(&self, rank: u64) -> u64 {
        (rank.wrapping_mul(self.mult).wrapping_add(self.offset)) % self.n
    }

    /// The probability of the hottest item.
    pub fn hottest_probability(&self) -> f64 {
        self.cdf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nssd_sim::DetRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(100, 1.2, 3);
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0, 0);
        let mut rng = DetRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(
            max / min < 1.2,
            "uniform counts spread too wide: {counts:?}"
        );
    }

    #[test]
    fn high_exponent_concentrates_mass() {
        let z = Zipf::new(1000, 1.3, 7);
        let mut rng = DetRng::seed_from_u64(3);
        let hot = z.scatter(0);
        let mut hot_hits = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == hot {
                hot_hits += 1;
            }
        }
        let observed = hot_hits as f64 / n as f64;
        let expected = z.hottest_probability();
        assert!(
            (observed - expected).abs() < 0.03,
            "hottest item frequency {observed} vs expected {expected}"
        );
        assert!(expected > 0.1);
    }

    #[test]
    fn scatter_is_a_permutation() {
        let z = Zipf::new(257, 1.0, 11);
        let mut seen = std::collections::HashSet::new();
        for k in 0..257 {
            assert!(seen.insert(z.scatter(k)));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let z = Zipf::new(500, 1.1, 9);
        let mut a = DetRng::seed_from_u64(5);
        let mut b = DetRng::seed_from_u64(5);
        let va: Vec<u64> = (0..100).map(|_| z.sample(&mut a)).collect();
        let vb: Vec<u64> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_domain_rejected() {
        let _ = Zipf::new(0, 1.0, 0);
    }
}
