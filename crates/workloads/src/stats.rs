//! Trace characterization — the aggregate statistics the synthetic suite is
//! tuned against (read mix, size distribution, arrival burstiness, skew) —
//! plus small-sample-honest percentile helpers.

use core::fmt;
use std::collections::HashMap;

use nssd_sim::{RunningStats, SimTime};

use crate::Trace;

/// Smallest sample count at which the `p`-th percentile is a distinct order
/// statistic rather than an alias for the maximum.
///
/// Nearest-rank percentiles with `rank = ⌈p/100 · n⌉` collapse onto the max
/// whenever `n < 100/(100−p)`: a "p999" over 50 completions is silently the
/// p100. This returns that threshold — 2 for p50, 100 for p99, 1000 for
/// p99.9 — so reporting code can flag (or skip) unresolvable tails instead
/// of presenting them as measurements.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 100`.
pub fn tail_support(p: f64) -> u64 {
    assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
    if p >= 100.0 {
        return 1; // the max is exact with any sample at all
    }
    // Nudge below the quotient before the ceil: 100/(100−99.9) lands at
    // 1000.0000000000568 in binary and must still mean 1000, not 1001.
    ((100.0 / (100.0 - p)) - REPR_EPS).ceil().max(1.0) as u64
}

/// Slack absorbing binary-representation noise in percentile arithmetic
/// (e.g. `99.9/100 × 2000 = 1998.0000000000001`), far below any
/// meaningful rank fraction.
const REPR_EPS: f64 = 1e-9;

/// Whether `count` samples are enough to resolve the `p`-th percentile as
/// its own order statistic (see [`tail_support`]).
pub fn tail_resolvable(count: u64, p: f64) -> bool {
    count >= tail_support(p)
}

/// Nearest-rank percentile over raw samples: `None` when `samples` is
/// empty, never panics, never reads out of range.
///
/// With fewer than [`tail_support`]`(p)` samples the result degenerates to
/// the maximum by construction — check [`tail_resolvable`] before treating
/// a deep tail as meaningful.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 100`.
pub fn exact_percentile(samples: &[SimTime], p: f64) -> Option<SimTime> {
    assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64 - REPR_EPS).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Aggregate statistics of a block trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Mean request size in bytes.
    pub mean_request_bytes: f64,
    /// Mean inter-arrival gap.
    pub mean_gap: SimTime,
    /// Coefficient of variation of inter-arrival gaps (1 ≈ Poisson,
    /// larger = bursty).
    pub gap_cov: f64,
    /// Footprint (highest touched byte + 1).
    pub footprint_bytes: u64,
    /// Fraction of requests whose start adjoins the previous request's end
    /// (sequentiality estimate).
    pub sequential_fraction: f64,
    /// Share of read requests landing on the single hottest 16 KB page.
    pub hottest_page_share: f64,
    /// Offered bandwidth: total bytes / duration.
    pub offered_bytes_per_sec: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn measure(trace: &Trace) -> Self {
        assert!(!trace.is_empty(), "cannot characterize an empty trace");
        const PAGE: u64 = 16 * 1024;
        let records = trace.records();
        let mut gaps = RunningStats::new();
        let mut sequential = 0usize;
        let mut read_page_counts: HashMap<u64, u64> = HashMap::new();
        let mut reads = 0u64;
        let mut prev_end: Option<u64> = None;
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                gaps.push((r.at - records[i - 1].at).as_ns() as f64);
            }
            if prev_end == Some(r.offset) {
                sequential += 1;
            }
            prev_end = Some(r.offset + r.len as u64);
            if r.op.is_read() {
                reads += 1;
                *read_page_counts.entry(r.offset / PAGE).or_insert(0) += 1;
            }
        }
        let duration = trace.duration();
        let offered = if duration.is_zero() {
            0.0
        } else {
            trace.total_bytes() as f64 / duration.as_secs_f64()
        };
        TraceStats {
            requests: records.len(),
            read_fraction: trace.read_fraction(),
            mean_request_bytes: trace.total_bytes() as f64 / records.len() as f64,
            mean_gap: SimTime::from_ns(gaps.mean() as u64),
            gap_cov: gaps.coefficient_of_variation(),
            footprint_bytes: trace.footprint_bytes(),
            sequential_fraction: sequential as f64 / records.len() as f64,
            hottest_page_share: if reads == 0 {
                0.0
            } else {
                *read_page_counts.values().max().unwrap_or(&0) as f64 / reads as f64
            },
            offered_bytes_per_sec: offered,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests, {:.0}% reads, mean {:.1} KiB",
            self.requests,
            self.read_fraction * 100.0,
            self.mean_request_bytes / 1024.0
        )?;
        writeln!(
            f,
            "arrivals: mean gap {}, CoV {:.2}; offered {:.2} GB/s",
            self.mean_gap,
            self.gap_cov,
            self.offered_bytes_per_sec / 1e9
        )?;
        write!(
            f,
            "footprint {:.1} MiB, {:.0}% sequential, hottest page {:.2}% of reads",
            self.footprint_bytes as f64 / (1 << 20) as f64,
            self.sequential_fraction * 100.0,
            self.hottest_page_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PaperWorkload, SyntheticPattern, SyntheticSpec};

    fn ns(samples: &[u64]) -> Vec<SimTime> {
        samples.iter().copied().map(SimTime::from_ns).collect()
    }

    #[test]
    fn tail_support_thresholds() {
        assert_eq!(tail_support(50.0), 2);
        assert_eq!(tail_support(95.0), 20);
        assert_eq!(tail_support(99.0), 100);
        assert_eq!(tail_support(99.9), 1000);
        assert_eq!(tail_support(100.0), 1);
        assert!(tail_resolvable(1000, 99.9));
        assert!(!tail_resolvable(999, 99.9));
        assert!(tail_resolvable(1, 100.0));
    }

    #[test]
    fn small_sample_p999_degenerates_to_max_but_is_flagged() {
        // The original defect: a p999 over a handful of completions must not
        // panic, and must be detectable as an alias for the maximum.
        let samples = ns(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        let p999 = exact_percentile(&samples, 99.9).unwrap();
        assert_eq!(p999, SimTime::from_ns(100)); // == max, by construction
        assert!(!tail_resolvable(samples.len() as u64, 99.9));
    }

    #[test]
    fn resolvable_p999_is_not_the_max() {
        let samples: Vec<SimTime> = (1..=2000).map(SimTime::from_ns).collect();
        let p999 = exact_percentile(&samples, 99.9).unwrap();
        assert_eq!(p999, SimTime::from_ns(1998));
        assert!(tail_resolvable(samples.len() as u64, 99.9));
    }

    #[test]
    fn exact_percentile_nearest_rank() {
        let samples = ns(&[40, 10, 30, 20]); // unsorted on purpose
        assert_eq!(exact_percentile(&samples, 50.0), Some(SimTime::from_ns(20)));
        assert_eq!(exact_percentile(&samples, 75.0), Some(SimTime::from_ns(30)));
        assert_eq!(
            exact_percentile(&samples, 100.0),
            Some(SimTime::from_ns(40))
        );
        assert_eq!(exact_percentile(&samples, 0.1), Some(SimTime::from_ns(10)));
    }

    #[test]
    fn exact_percentile_empty_and_singleton() {
        assert_eq!(exact_percentile(&[], 99.9), None);
        let one = ns(&[7]);
        for p in [0.1, 50.0, 99.9, 100.0] {
            assert_eq!(exact_percentile(&one, p), Some(SimTime::from_ns(7)));
        }
    }

    #[test]
    fn exact_percentile_is_monotone_in_p() {
        let samples: Vec<SimTime> = (0..137).map(|i| SimTime::from_ns(i * 13 % 997)).collect();
        let mut prev = SimTime::ZERO;
        for p in 1..=100 {
            let v = exact_percentile(&samples, p as f64).unwrap();
            assert!(v >= prev, "p{p} went backwards");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "out of (0, 100]")]
    fn percentile_zero_rejected() {
        exact_percentile(&[SimTime::ZERO], 0.0);
    }

    #[test]
    fn synthetic_sequential_is_fully_sequential() {
        let t = SyntheticSpec::paper(SyntheticPattern::SequentialWrite, 100, 1 << 24).generate();
        let s = TraceStats::measure(&t);
        // Wraps at the footprint, so a handful of resets are expected.
        assert!(s.sequential_fraction > 0.9, "{}", s.sequential_fraction);
        assert_eq!(s.read_fraction, 0.0);
        assert_eq!(s.mean_request_bytes, 65536.0);
    }

    #[test]
    fn suite_statistics_match_specs() {
        for w in [PaperWorkload::Exchange1, PaperWorkload::WebSearch0] {
            let t = w.generate(5_000, 1 << 28, 31);
            let s = TraceStats::measure(&t);
            let spec = w.spec();
            assert!(
                (s.read_fraction - spec.read_fraction).abs() < 0.05,
                "{}: {}",
                w.name(),
                s.read_fraction
            );
            assert!(s.footprint_bytes <= 1 << 28);
            assert!(s.offered_bytes_per_sec > 0.0);
        }
    }

    #[test]
    fn bursty_traces_have_high_gap_cov() {
        let bursty = TraceStats::measure(&PaperWorkload::Exchange1.generate(5_000, 1 << 28, 32));
        assert!(bursty.gap_cov > 1.0, "CoV {}", bursty.gap_cov);
    }

    #[test]
    fn skewed_reads_have_hot_page() {
        let s = TraceStats::measure(&PaperWorkload::Exchange1.generate(8_000, 1 << 28, 33));
        let u = TraceStats::measure(&PaperWorkload::Build0.generate(8_000, 1 << 28, 33));
        assert!(
            s.hottest_page_share > u.hottest_page_share,
            "exchange {} vs build {}",
            s.hottest_page_share,
            u.hottest_page_share
        );
    }

    #[test]
    fn display_is_informative() {
        let s = TraceStats::measure(&PaperWorkload::YcsbA.generate(500, 1 << 26, 34));
        let text = s.to_string();
        assert!(text.contains("requests"));
        assert!(text.contains("footprint"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_rejected() {
        TraceStats::measure(&Trace::new("empty"));
    }
}
