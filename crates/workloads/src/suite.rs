//! The named trace suite standing in for the paper's enterprise traces.
//!
//! The paper evaluates on traces from Yadgar et al. (TOS'21), the FIU
//! collection and TraceTracker — proprietary-origin workloads we cannot
//! redistribute. Each [`PaperWorkload`] is a deterministic generator tuned
//! to reproduce the *characteristics the paper's results depend on*: the
//! read/write mix, the Zipf skew of read addresses (channel imbalance,
//! Fig 3), sequential run lengths, arrival intensity and burstiness, and
//! idle periods (which preemptive GC exploits, Fig 19).

use nssd_host::{IoOp, IoRequest};
use nssd_sim::SimTime;
use nssd_sim::{DetRng, Rng};

use crate::{Trace, Zipf};

/// Reference aggregate bandwidth the `intensity` knob is expressed against
/// (the baseline SSD's 8 × 1 GB/s flash channels).
pub const REFERENCE_BYTES_PER_SEC: u64 = 8_000_000_000;

/// Generation-time characteristics of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Trace name.
    pub name: &'static str,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Zipf exponent of read addresses (0 = uniform).
    pub read_skew: f64,
    /// Probability a request continues the previous sequential run.
    pub sequential_fraction: f64,
    /// Mean request size in bytes (jittered ×1–4 pages).
    pub request_bytes: u32,
    /// Offered load as a fraction of [`REFERENCE_BYTES_PER_SEC`].
    pub intensity: f64,
    /// Burstiness: `Some((on_fraction, multiplier))` alternates busy phases
    /// at `multiplier ×` the mean rate with idle phases.
    pub burst: Option<(f64, f64)>,
    /// Hot-set granularity: skewed reads pick a Zipf *region* of this many
    /// pages, then a uniform page within it. Block-trace hot spots are
    /// files/extents, not single sectors; region granularity keeps the
    /// hottest single page's share realistic.
    pub hot_region_pages: u64,
}

/// The named workloads of the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperWorkload {
    /// Mail-server-like: mixed, skewed reads, bursty (cf. Exchange).
    Exchange0,
    /// Mail-server-like, hotter and more intense (the Fig 3 subject).
    Exchange1,
    /// LSM store under read-mostly load with compaction runs
    /// (cf. RocksDB; the Fig 20a tail-latency subject).
    RocksDb0,
    /// LSM store under write-heavy compaction.
    RocksDb1,
    /// Read-dominant index serving (cf. WebSearch).
    WebSearch0,
    /// Write-heavy sequential build/ingest.
    Build0,
    /// 50/50 random key-value mix (cf. YCSB-A).
    YcsbA,
    /// Developer-tools trace with long idle gaps (preemptive-GC friendly).
    DevTools0,
}

impl PaperWorkload {
    /// The full suite, in presentation order.
    pub fn all() -> [PaperWorkload; 8] {
        [
            PaperWorkload::Exchange0,
            PaperWorkload::Exchange1,
            PaperWorkload::RocksDb0,
            PaperWorkload::RocksDb1,
            PaperWorkload::WebSearch0,
            PaperWorkload::Build0,
            PaperWorkload::YcsbA,
            PaperWorkload::DevTools0,
        ]
    }

    /// This workload's generation parameters.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            PaperWorkload::Exchange0 => WorkloadSpec {
                name: "exchange-0",
                read_fraction: 0.60,
                read_skew: 1.05,
                sequential_fraction: 0.20,
                request_bytes: 32 * 1024,
                intensity: 0.18,
                burst: Some((0.4, 2.0)),
                hot_region_pages: 4,
            },
            PaperWorkload::Exchange1 => WorkloadSpec {
                name: "exchange-1",
                read_fraction: 0.55,
                read_skew: 1.15,
                sequential_fraction: 0.15,
                request_bytes: 16 * 1024,
                intensity: 0.25,
                burst: Some((0.35, 2.2)),
                hot_region_pages: 2,
            },
            PaperWorkload::RocksDb0 => WorkloadSpec {
                name: "rocksdb-0",
                read_fraction: 0.80,
                read_skew: 1.00,
                sequential_fraction: 0.30,
                request_bytes: 16 * 1024,
                intensity: 0.22,
                burst: Some((0.5, 1.6)),
                hot_region_pages: 4,
            },
            PaperWorkload::RocksDb1 => WorkloadSpec {
                name: "rocksdb-1",
                read_fraction: 0.45,
                read_skew: 0.90,
                sequential_fraction: 0.50,
                request_bytes: 64 * 1024,
                intensity: 0.20,
                burst: Some((0.5, 1.6)),
                hot_region_pages: 8,
            },
            PaperWorkload::WebSearch0 => WorkloadSpec {
                name: "websearch-0",
                read_fraction: 0.95,
                read_skew: 1.10,
                sequential_fraction: 0.10,
                request_bytes: 16 * 1024,
                intensity: 0.20,
                burst: Some((0.45, 1.8)),
                hot_region_pages: 2,
            },
            PaperWorkload::Build0 => WorkloadSpec {
                name: "build-0",
                read_fraction: 0.20,
                read_skew: 0.60,
                sequential_fraction: 0.70,
                request_bytes: 64 * 1024,
                intensity: 0.22,
                burst: Some((0.5, 1.6)),
                hot_region_pages: 8,
            },
            PaperWorkload::YcsbA => WorkloadSpec {
                name: "ycsb-a",
                read_fraction: 0.50,
                read_skew: 1.00,
                sequential_fraction: 0.0,
                request_bytes: 16 * 1024,
                intensity: 0.20,
                burst: Some((0.45, 1.8)),
                hot_region_pages: 2,
            },
            PaperWorkload::DevTools0 => WorkloadSpec {
                name: "devtools-0",
                read_fraction: 0.70,
                read_skew: 0.85,
                sequential_fraction: 0.40,
                request_bytes: 32 * 1024,
                intensity: 0.08,
                burst: Some((0.25, 2.5)),
                hot_region_pages: 4,
            },
        }
    }

    /// The trace's name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Generates `requests` requests over a `footprint_bytes` logical span.
    pub fn generate(self, requests: usize, footprint_bytes: u64, seed: u64) -> Trace {
        generate_trace(&self.spec(), requests, footprint_bytes, seed)
    }
}

/// Generates a trace from an arbitrary [`WorkloadSpec`].
///
/// # Panics
///
/// Panics if the footprint holds fewer than four pages or `requests == 0`.
pub fn generate_trace(
    spec: &WorkloadSpec,
    requests: usize,
    footprint_bytes: u64,
    seed: u64,
) -> Trace {
    const PAGE: u64 = 16 * 1024;
    assert!(footprint_bytes >= 4 * PAGE, "footprint too small");
    assert!(requests > 0, "need at least one request");
    let pages = footprint_bytes / PAGE;
    let region = spec.hot_region_pages.clamp(1, pages);
    let regions = (pages / region).max(1);
    let mut rng = DetRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let zipf = Zipf::new(regions, spec.read_skew, seed);
    let mut trace = Trace::new(spec.name);

    // Mean inter-arrival from the offered byte rate.
    let mean_bytes = spec.request_bytes as f64 * 1.5; // 1–4 page jitter mean
    let byte_rate = spec.intensity * REFERENCE_BYTES_PER_SEC as f64;
    let mean_gap_ns = mean_bytes / byte_rate * 1e9;

    let mut now = 0u64;
    let mut seq_read_cursor = rng.gen_range(0..pages);
    let mut seq_write_cursor = rng.gen_range(0..pages);
    // Burst phases cycle on a fixed 2 ms period.
    const BURST_PERIOD_NS: f64 = 2_000_000.0;

    for _ in 0..requests {
        // Arrival process: exponential gaps, modulated by the burst phase.
        let rate_mult = match spec.burst {
            Some((on_fraction, mult)) => {
                let phase = (now as f64 % BURST_PERIOD_NS) / BURST_PERIOD_NS;
                if phase < on_fraction {
                    mult
                } else {
                    // Scale the off-phase so the long-run mean rate holds.
                    ((1.0 - on_fraction * mult) / (1.0 - on_fraction)).max(0.05)
                }
            }
            None => 1.0,
        };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() * mean_gap_ns / rate_mult;
        now += gap as u64;

        let is_read = rng.gen_bool(spec.read_fraction);
        let pages_len = rng
            .gen_range(1..=4)
            .min(spec.request_bytes as u64 / PAGE * 2)
            .max(1);
        let sequential = rng.gen_bool(spec.sequential_fraction);
        let page = if is_read {
            if sequential {
                seq_read_cursor = (seq_read_cursor + pages_len) % pages;
                seq_read_cursor
            } else {
                let r = zipf.sample(&mut rng);
                (r * region + rng.gen_range(0..region)).min(pages - 1)
            }
        } else if sequential {
            seq_write_cursor = (seq_write_cursor + pages_len) % pages;
            seq_write_cursor
        } else {
            rng.gen_range(0..pages)
        };
        let page = page.min(pages - pages_len.min(pages));
        trace.push(IoRequest::new(
            if is_read { IoOp::Read } else { IoOp::Write },
            page * PAGE,
            (pages_len * PAGE) as u32,
            SimTime::from_ns(now),
        ));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOOTPRINT: u64 = 1 << 28; // 256 MiB

    #[test]
    fn read_fractions_match_specs() {
        for w in PaperWorkload::all() {
            let t = w.generate(4000, FOOTPRINT, 1);
            let want = w.spec().read_fraction;
            let got = t.read_fraction();
            assert!(
                (got - want).abs() < 0.05,
                "{}: read fraction {got} vs spec {want}",
                w.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperWorkload::Exchange1.generate(500, FOOTPRINT, 9);
        let b = PaperWorkload::Exchange1.generate(500, FOOTPRINT, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PaperWorkload::Exchange1.generate(500, FOOTPRINT, 1);
        let b = PaperWorkload::Exchange1.generate(500, FOOTPRINT, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn requests_stay_in_footprint() {
        for w in PaperWorkload::all() {
            let t = w.generate(2000, FOOTPRINT, 3);
            for r in &t {
                assert!(r.offset + r.len as u64 <= FOOTPRINT, "{}", w.name());
                assert_eq!(r.offset % (16 * 1024), 0);
            }
        }
    }

    #[test]
    fn skewed_reads_have_hot_pages() {
        let t = PaperWorkload::Exchange1.generate(8000, FOOTPRINT, 4);
        let mut counts = std::collections::HashMap::new();
        for r in t.iter().filter(|r| r.op.is_read()) {
            *counts.entry(r.offset / (16 * 1024)).or_insert(0u32) += 1;
        }
        let reads: u32 = counts.values().sum();
        let hottest = *counts.values().max().unwrap();
        // The hottest page should absorb a clearly super-uniform share.
        assert!(
            hottest as f64 / reads as f64 > 0.01,
            "no hot page: {hottest}/{reads}"
        );
    }

    #[test]
    fn bursty_workloads_have_irregular_gaps() {
        let bursty = PaperWorkload::Exchange1.generate(4000, FOOTPRINT, 5);
        let steady = PaperWorkload::RocksDb0.generate(4000, FOOTPRINT, 5);
        let cov = |t: &Trace| {
            let gaps: Vec<f64> = t
                .records()
                .windows(2)
                .map(|w| (w[1].at - w[0].at).as_ns() as f64)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cov(&bursty) > cov(&steady),
            "burstiness not visible in arrival gaps"
        );
    }

    #[test]
    fn intensity_controls_duration() {
        let slow = PaperWorkload::DevTools0.generate(2000, FOOTPRINT, 6);
        let fast = PaperWorkload::RocksDb0.generate(2000, FOOTPRINT, 6);
        // DevTools offers ~0.2× reference bandwidth vs RocksDB's 0.7× with
        // larger requests, so its trace must span a longer wall-clock.
        assert!(slow.duration() > fast.duration());
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<&str> = PaperWorkload::all().iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
