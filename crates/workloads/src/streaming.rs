//! Bounded-memory windowed streaming latency statistics.
//!
//! [`WindowedStats`] answers "what were p50/p99/p99.9 over the most recent
//! traffic" without retaining raw samples: completions stream into a ring of
//! count-based windows, each a coarse log-linear histogram, and queries merge
//! the retained windows. Memory is fixed at construction — `retain + 1`
//! windows of [`WINDOW_BUCKETS`] counters — no matter how many months of
//! simulated traffic stream through, which is what lets the device-lifetime
//! experiment track tail-latency drift across billions of completions.
//!
//! The coarse histograms use 8 sub-buckets per octave (the exact
//! [`nssd_sim::Histogram`] uses 32), so every quantile estimate is within one
//! bucket of the true order statistic of the retained samples:
//! a relative error of at most [`STREAMING_ERROR_BOUND`] (12.5%), and half
//! that in the common case since bucket midpoints are reported. Ranks
//! themselves are exact — only the reported representative value is
//! quantized.
//!
//! Deep tails honor the same small-sample discipline as the exact path:
//! [`WindowedStats::percentile`] returns `None` whenever the retained sample
//! count fails [`tail_resolvable`], instead of aliasing the maximum.

use std::collections::VecDeque;

use nssd_sim::SimTime;

use crate::stats::tail_resolvable;

/// Worst-case relative error of a [`WindowedStats`] quantile versus the
/// exact order statistic of the retained samples: one coarse bucket width,
/// `1/8` of the value, from 8 sub-buckets per octave.
pub const STREAMING_ERROR_BOUND: f64 = 0.125;

const LINEAR_LIMIT: u64 = 64;
const SUB_BUCKETS: u64 = 8;
/// Counters per window: 64 exact sub-64 ns buckets plus 8 sub-buckets for
/// each of the 58 octaves above 2^6.
pub const WINDOW_BUCKETS: usize = 64 + 58 * 8;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= 6
        let octave = msb - 5; // 1-based octave beyond the linear range
        let sub = (v >> (msb - 3)) - SUB_BUCKETS; // in [0, 8)
        (LINEAR_LIMIT + (octave - 1) * SUB_BUCKETS + sub) as usize
    }
}

/// Midpoint of the value range covered by bucket `idx`.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_LIMIT {
        idx
    } else {
        let rel = idx - LINEAR_LIMIT;
        let octave = rel / SUB_BUCKETS + 1;
        let sub = rel % SUB_BUCKETS;
        let width = 1u64 << (octave + 2);
        let lower = (1u64 << (octave + 5)) + sub * width;
        lower + width / 2
    }
}

/// One count-based window of coarse latency buckets.
#[derive(Debug, Clone)]
struct Window {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Window {
    fn new() -> Self {
        Window {
            counts: vec![0; WINDOW_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// Streaming quantile estimator over a sliding window of the most recent
/// completions, in memory bounded at construction time.
///
/// Samples fill count-based windows of `window_len` each; once more than
/// `retain` windows are full, the oldest is evicted wholesale. Queries see
/// the retained suffix of the stream: between `retain × window_len` and
/// `(retain + 1) × window_len` of the most recent samples.
///
/// # Examples
///
/// ```
/// use nssd_sim::SimTime;
/// use nssd_workloads::{WindowedStats, STREAMING_ERROR_BOUND};
///
/// let mut w = WindowedStats::new(1000, 4);
/// for us in 1..=2000u64 {
///     w.record(SimTime::from_us(us));
/// }
/// let p50 = w.percentile(50.0).unwrap().as_us_f64();
/// assert!((p50 - 1000.0).abs() / 1000.0 <= STREAMING_ERROR_BOUND);
/// // p99.9 over 2000 retained samples resolves; over 100 it would not.
/// assert!(w.percentile(99.9).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct WindowedStats {
    window_len: u64,
    retain: usize,
    /// Back is the currently filling window; fronts are full.
    windows: VecDeque<Window>,
    total: u64,
    evicted: u64,
}

impl WindowedStats {
    /// Creates an estimator holding up to `retain` full windows of
    /// `window_len` samples each, plus the window currently filling.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` or `retain` is zero.
    pub fn new(window_len: u64, retain: usize) -> Self {
        assert!(window_len > 0, "window_len must be positive");
        assert!(retain > 0, "retain must be positive");
        let mut windows = VecDeque::with_capacity(retain + 1);
        windows.push_back(Window::new());
        WindowedStats {
            window_len,
            retain,
            windows,
            total: 0,
            evicted: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: SimTime) {
        if self.windows.back().expect("never empty").count == self.window_len {
            self.windows.push_back(Window::new());
            if self.windows.len() > self.retain + 1 {
                let old = self.windows.pop_front().expect("len > 1");
                self.evicted += old.count;
            }
        }
        self.windows
            .back_mut()
            .expect("never empty")
            .record(sample.as_ns());
        self.total += 1;
    }

    /// Samples currently retained (the sliding window the queries see).
    pub fn retained(&self) -> u64 {
        self.total - self.evicted
    }

    /// Samples recorded over the estimator's lifetime.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Samples that have aged out of the retained window.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Samples per window, as configured.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Exact mean of the retained samples; [`SimTime::ZERO`] when empty.
    pub fn mean(&self) -> SimTime {
        let count = self.retained();
        if count == 0 {
            return SimTime::ZERO;
        }
        let sum: u128 = self.windows.iter().map(|w| w.sum).sum();
        SimTime::from_ns((sum / count as u128) as u64)
    }

    /// Exact maximum of the retained samples; [`SimTime::ZERO`] when empty.
    pub fn max(&self) -> SimTime {
        SimTime::from_ns(self.windows.iter().map(|w| w.max).max().unwrap_or(0))
    }

    /// The `p`-th percentile of the retained samples, within
    /// [`STREAMING_ERROR_BOUND`] of the exact order statistic.
    ///
    /// Returns `None` when the retained count cannot resolve `p` as its own
    /// order statistic (see [`tail_resolvable`]) — a p99.9 over 50 retained
    /// samples is an alias for the maximum, not a measurement, and is
    /// refused rather than reported.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 100`.
    pub fn percentile(&self, p: f64) -> Option<SimTime> {
        assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
        let count = self.retained();
        if !tail_resolvable(count, p) {
            return None;
        }
        let min = self.windows.iter().map(|w| w.min).min().unwrap_or(u64::MAX);
        let max = self.windows.iter().map(|w| w.max).max().unwrap_or(0);
        let rank = ((p / 100.0) * count as f64).ceil() as u64;
        let rank = rank.clamp(1, count);
        let mut seen = 0u64;
        for idx in 0..WINDOW_BUCKETS {
            seen += self.windows.iter().map(|w| w.counts[idx]).sum::<u64>();
            if seen >= rank {
                return Some(SimTime::from_ns(bucket_value(idx).clamp(min, max)));
            }
        }
        Some(SimTime::from_ns(max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::exact_percentile;

    #[test]
    fn bucket_index_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < WINDOW_BUCKETS);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < WINDOW_BUCKETS);
    }

    #[test]
    fn bucket_value_within_the_documented_bound() {
        for &v in &[64u64, 100, 1_000, 12_345, 1_000_000, 987_654_321] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(
                err <= STREAMING_ERROR_BOUND,
                "value {v} represented as {rep} (err {err})"
            );
        }
        for v in 0..LINEAR_LIMIT {
            assert_eq!(bucket_value(bucket_index(v)), v, "linear range not exact");
        }
    }

    #[test]
    fn small_samples_refuse_the_deep_tail() {
        let mut w = WindowedStats::new(64, 4);
        for us in 1..=50u64 {
            w.record(SimTime::from_us(us));
        }
        assert_eq!(w.percentile(99.0), None, "p99 over 50 samples is the max");
        assert_eq!(w.percentile(99.9), None);
        assert!(w.percentile(50.0).is_some());
        assert_eq!(WindowedStats::new(64, 4).percentile(50.0), None);
    }

    #[test]
    fn eviction_slides_the_window() {
        let mut w = WindowedStats::new(100, 2);
        // 1000 samples at 1 µs, then 300 at 1 ms: the retained suffix
        // (200–300 most recent) is entirely in the 1 ms regime.
        for _ in 0..1000 {
            w.record(SimTime::from_us(1));
        }
        for _ in 0..300 {
            w.record(SimTime::from_ms(1));
        }
        assert!(w.retained() <= 300);
        assert!(w.evicted() >= 1000);
        assert_eq!(w.total_recorded(), 1300);
        let p50 = w.percentile(50.0).unwrap().as_us_f64();
        assert!(
            (p50 - 1000.0).abs() / 1000.0 <= STREAMING_ERROR_BOUND,
            "p50 {p50}µs still sees evicted samples"
        );
    }

    #[test]
    fn agrees_with_exact_percentiles_on_a_ramp() {
        let mut w = WindowedStats::new(10_000, 1);
        let samples: Vec<SimTime> = (1..=5000u64).map(SimTime::from_us).collect();
        for &s in &samples {
            w.record(s);
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&samples, p).unwrap().as_ns() as f64;
            let est = w.percentile(p).unwrap().as_ns() as f64;
            assert!(
                (est - exact).abs() / exact <= STREAMING_ERROR_BOUND,
                "p{p}: streaming {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn memory_is_bounded_by_configuration() {
        let mut w = WindowedStats::new(10, 3);
        for i in 0..100_000u64 {
            w.record(SimTime::from_ns(i % 7_000));
        }
        assert!(w.windows.len() <= 4, "ring grew past retain + 1");
        assert!(w.retained() <= 40);
        assert_eq!(w.total_recorded(), 100_000);
    }

    #[test]
    #[should_panic(expected = "window_len")]
    fn zero_window_rejected() {
        WindowedStats::new(0, 1);
    }
}
