//! Per-tenant workload mixes for the multi-tenant host frontend.
//!
//! A [`TenantMix`] names N tenants, each pairing a QoS configuration
//! ([`TenantConfig`]: weight + SLO class) with an arrival process drawn
//! from the existing generators — a raw [`WorkloadSpec`], a named
//! [`PaperWorkload`], or a closed-loop [`MixedSpec`]. [`TenantMix::generate`]
//! carves the logical address space into equal per-tenant partitions and
//! renders one trace per tenant, ready for
//! `run_tenants(…)` in the core crate.
//!
//! The canonical interference scenario the paper-style experiments use —
//! a GC-heavy write-burst tenant against a read-latency-sensitive
//! neighbor — is pinned in [`TenantMix::interference`].

use nssd_host::{IoRequest, SloClass, TenantConfig};

use crate::{generate_trace, MixedSpec, PaperWorkload, Trace, WorkloadSpec};

/// The arrival process of one tenant, drawn from the existing generators.
#[derive(Debug, Clone, Copy)]
pub enum TenantWorkload {
    /// An explicit open-loop spec (timestamps from intensity/burstiness).
    Spec(WorkloadSpec),
    /// A named workload from the paper suite.
    Paper(PaperWorkload),
    /// A closed-loop synthetic stream (all arrivals at t=0, so the tenant
    /// is fully backlogged and paced only by queue arbitration).
    Mixed(MixedSpec),
}

/// One tenant of a mix: QoS parameters plus its workload.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Tenant name (shows up in per-tenant report rows).
    pub name: &'static str,
    /// Arbitration weight (≥ 1).
    pub weight: u32,
    /// SLO class, setting the latency target violations count against.
    pub slo: SloClass,
    /// Arrival process.
    pub workload: TenantWorkload,
    /// Requests to generate for this tenant.
    pub requests: usize,
}

/// A named set of tenants sharing one device.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Mix name (for tables and file names).
    pub name: &'static str,
    /// The tenants, in queue-index order (ties in arbitration break toward
    /// the earlier tenant).
    pub tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// The pinned interference scenario: a GC-heavy write-burst tenant
    /// (large bursty writes, low weight, throughput SLO) sharing the device
    /// with a read-latency-sensitive neighbor (small skewed reads, high
    /// weight, tight SLO). `requests` is per tenant.
    pub fn interference(requests: usize) -> Self {
        TenantMix {
            name: "interference",
            tenants: vec![
                TenantSpec {
                    name: "latency",
                    weight: 3,
                    slo: SloClass::LatencySensitive,
                    workload: TenantWorkload::Spec(WorkloadSpec {
                        name: "latency",
                        read_fraction: 0.98,
                        read_skew: 1.1,
                        sequential_fraction: 0.1,
                        request_bytes: 16 * 1024,
                        intensity: 0.15,
                        burst: None,
                        hot_region_pages: 2,
                    }),
                    requests,
                },
                TenantSpec {
                    name: "writeburst",
                    weight: 1,
                    slo: SloClass::Throughput,
                    workload: TenantWorkload::Spec(WorkloadSpec {
                        name: "writeburst",
                        read_fraction: 0.05,
                        read_skew: 0.6,
                        sequential_fraction: 0.3,
                        request_bytes: 64 * 1024,
                        intensity: 0.5,
                        burst: Some((0.3, 3.0)),
                        hot_region_pages: 8,
                    }),
                    requests,
                },
            ],
        }
    }

    /// Renders the mix over a shared footprint: the address space is split
    /// into equal 16 KiB-aligned partitions — one per tenant, so tenants
    /// interfere through device resources (channels, chips, GC), never
    /// through overlapping data — and each tenant's trace is generated
    /// inside its partition from a per-tenant seed derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or the per-tenant partition is smaller
    /// than 64 KiB (four 16 KiB pages, the generator minimum).
    pub fn generate(&self, footprint_bytes: u64, seed: u64) -> Vec<(TenantConfig, Trace)> {
        const PAGE: u64 = 16 * 1024;
        assert!(!self.tenants.is_empty(), "tenant mix is empty");
        let partition = (footprint_bytes / self.tenants.len() as u64) / PAGE * PAGE;
        assert!(
            partition >= 4 * PAGE,
            "{} bytes across {} tenants leaves partitions under the \
             4-page generator minimum",
            footprint_bytes,
            self.tenants.len()
        );
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let tenant_seed = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
                let trace = match t.workload {
                    TenantWorkload::Spec(ref spec) => {
                        generate_trace(spec, t.requests, partition, tenant_seed)
                    }
                    TenantWorkload::Paper(w) => w.generate(t.requests, partition, tenant_seed),
                    TenantWorkload::Mixed(spec) => MixedSpec {
                        requests: t.requests,
                        footprint_bytes: partition,
                        seed: tenant_seed,
                        ..spec
                    }
                    .generate(),
                };
                let config = TenantConfig::new(t.name, t.weight, t.slo);
                (config, offset_trace(trace, i as u64 * partition))
            })
            .collect()
    }
}

/// Rebases every request of `trace` by `base` bytes (partition placement).
fn offset_trace(trace: Trace, base: u64) -> Trace {
    let mut out = Trace::new(trace.name());
    for r in trace.into_records() {
        out.push(IoRequest::new(r.op, r.offset + base, r.len, r.at));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOOTPRINT: u64 = 8 << 20;

    #[test]
    fn interference_mix_has_the_two_paper_tenants() {
        let mix = TenantMix::interference(100);
        assert_eq!(mix.tenants.len(), 2);
        assert_eq!(mix.tenants[0].name, "latency");
        assert!(mix.tenants[0].weight > mix.tenants[1].weight);
        let streams = mix.generate(FOOTPRINT, 7);
        assert_eq!(streams.len(), 2);
        let (lat_cfg, lat_trace) = &streams[0];
        let (wb_cfg, wb_trace) = &streams[1];
        assert_eq!(lat_cfg.name, "latency");
        assert!(lat_cfg.slo_latency < wb_cfg.slo_latency);
        assert!(lat_trace.read_fraction() > 0.9, "latency tenant reads");
        assert!(wb_trace.read_fraction() < 0.2, "writeburst tenant writes");
    }

    #[test]
    fn partitions_do_not_overlap() {
        let mix = TenantMix::interference(300);
        let streams = mix.generate(FOOTPRINT, 11);
        let partition = FOOTPRINT / 2;
        for (i, (_, trace)) in streams.iter().enumerate() {
            let lo = i as u64 * partition;
            for r in trace.records() {
                assert!(r.offset >= lo, "tenant {i} below its partition");
                assert!(
                    r.offset + r.len as u64 <= lo + partition,
                    "tenant {i} past its partition"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let mix = TenantMix::interference(50);
        let a = mix.generate(FOOTPRINT, 5);
        let b = mix.generate(FOOTPRINT, 5);
        for ((_, ta), (_, tb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
        }
        let c = mix.generate(FOOTPRINT, 6);
        assert_ne!(a[0].1, c[0].1, "seed must matter");
    }

    #[test]
    fn tenants_get_distinct_seeds() {
        // Two tenants with the *same* workload must not mirror each other.
        let mix = TenantMix {
            name: "twins",
            tenants: vec![
                TenantSpec {
                    name: "a",
                    weight: 1,
                    slo: SloClass::BestEffort,
                    workload: TenantWorkload::Paper(PaperWorkload::YcsbA),
                    requests: 80,
                },
                TenantSpec {
                    name: "b",
                    weight: 1,
                    slo: SloClass::BestEffort,
                    workload: TenantWorkload::Paper(PaperWorkload::YcsbA),
                    requests: 80,
                },
            ],
        };
        let streams = mix.generate(FOOTPRINT, 9);
        let a = offset_trace(streams[0].1.clone(), 0);
        let b = offset_trace(streams[1].1.clone(), 0);
        // Compare shapes modulo the partition rebase: offsets relative to
        // each partition start.
        let rel = |t: &Trace, base: u64| -> Vec<(u64, u32)> {
            t.records()
                .iter()
                .map(|r| (r.offset - base, r.len))
                .collect()
        };
        assert_ne!(rel(&a, 0), rel(&b, FOOTPRINT / 2), "tenants shared a seed");
    }

    #[test]
    fn mixed_workload_is_backlogged_at_time_zero() {
        let mix = TenantMix {
            name: "closed",
            tenants: vec![TenantSpec {
                name: "m",
                weight: 1,
                slo: SloClass::Throughput,
                workload: TenantWorkload::Mixed(MixedSpec {
                    read_ratio: 1.0,
                    mean_run_length: 1.0,
                    request_bytes: 16 * 1024,
                    requests: 0,        // overridden by TenantSpec.requests
                    footprint_bytes: 0, // overridden by the partition
                    seed: 0,            // overridden by the derived seed
                }),
                requests: 40,
            }],
        };
        let streams = mix.generate(FOOTPRINT, 3);
        let trace = &streams[0].1;
        assert_eq!(trace.len(), 40);
        assert!(trace.records().iter().all(|r| r.at.is_zero()));
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn undersized_footprint_rejected() {
        TenantMix::interference(10).generate(100 * 1024, 1);
    }
}
