//! Timing-free functional shadow model for the Networked SSD simulator.
//!
//! The engine in `nssd-core` answers *when* — the oracle answers *whether*.
//! [`Oracle`] maintains an independent reference page map plus a per-page
//! content token (a deterministic stand-in for the data a write carried) and
//! is notified, in lockstep, of every functional action the simulator takes:
//! host writes, host reads, GC relocations, erases, retirements. Each read
//! is cross-checked against what was last written; each erase is checked to
//! never wipe a page the shadow still considers live; and a conservation
//! checker verifies that valid + invalid + unwritten + bad pages per plane
//! always sum to the geometric capacity and that erase counts only grow.
//!
//! The oracle never aborts the simulation: violations accumulate in a
//! [`ViolationLog`](nssd_sim::ViolationLog) and surface in the run report,
//! where tests assert the log is empty (or, for mutation self-tests, that
//! it is not).
//!
//! ```
//! use nssd_ftl::{Ftl, FtlConfig, Lpn};
//! use nssd_oracle::Oracle;
//! use nssd_sim::SimTime;
//!
//! let mut cfg = FtlConfig::evaluation_defaults();
//! cfg.geometry = nssd_flash::Geometry::tiny();
//! cfg.gc.victims_per_trigger = 2;
//! let mut ftl = Ftl::new(cfg)?;
//! let mut oracle = Oracle::new(*ftl.geometry(), ftl.logical_pages());
//!
//! let out = ftl.write(Lpn::new(3))?;
//! oracle.note_host_write(Lpn::new(3), out.ppn, SimTime::ZERO);
//! oracle.check_host_read(Lpn::new(3), ftl.lookup(Lpn::new(3)), SimTime::ZERO);
//! assert!(oracle.violations().is_empty());
//! # Ok::<(), nssd_ftl::FtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use nssd_flash::{Geometry, Pbn, Ppn};
use nssd_ftl::{Ftl, Lpn, Relocation};
use nssd_sim::{ckpt, CkptError, CkptReader, CkptWriter, SimTime, ViolationLog};

const UNMAPPED: u64 = u64::MAX;

/// SplitMix64 finalizer — the deterministic mixing function behind content
/// tokens and the functional digest.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// What the oracle observed over a run, embedded in the run report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleSummary {
    /// Whether an oracle ran at all (`false` in the default report).
    pub enabled: bool,
    /// Cross-checks performed (reads verified + invariant sweeps).
    pub checks: u64,
    /// Rendered violations, in detection order (empty = clean run).
    pub violations: Vec<String>,
    /// Order-independent hash of the final functional state — equal across
    /// architectures that carried the same logical workload to the same
    /// functional outcome.
    pub functional_digest: u64,
}

/// The shadow model: reference page map, content tokens, and the
/// conservation-invariant checker.
#[derive(Debug, Clone)]
pub struct Oracle {
    geometry: Geometry,
    logical_pages: u64,
    /// Shadow L2P: raw PPN per LPN, [`UNMAPPED`] when never written.
    l2p: Vec<u64>,
    /// Content token of the last write to each LPN.
    token: Vec<u64>,
    /// Host writes observed per LPN (the digest input).
    writes: Vec<u64>,
    /// Shadow physical state: raw PPN → (owner raw LPN, content token).
    phys: HashMap<u64, (u64, u64)>,
    /// Erase-count snapshot from the previous invariant sweep.
    last_erase_counts: Vec<u32>,
    write_seq: u64,
    checks: u64,
    log: ViolationLog,
}

impl Oracle {
    /// Creates a shadow model of an erased device.
    pub fn new(geometry: Geometry, logical_pages: u64) -> Self {
        Oracle {
            geometry,
            logical_pages,
            l2p: vec![UNMAPPED; logical_pages as usize],
            token: vec![0; logical_pages as usize],
            writes: vec![0; logical_pages as usize],
            phys: HashMap::new(),
            last_erase_counts: vec![0; geometry.block_count() as usize],
            write_seq: 0,
            checks: 0,
            log: ViolationLog::new(),
        }
    }

    /// Adopts the FTL's current mapping wholesale — the trusted-resync path
    /// for state built outside the observed event stream (preconditioning
    /// before `run()`, chip-failure recovery). Content tokens of LPNs that
    /// stay mapped are preserved so later read checks remain meaningful;
    /// newly appearing LPNs get fresh tokens. Write counters are untouched.
    pub fn sync_from_ftl(&mut self, ftl: &Ftl) {
        self.phys.clear();
        for l in 0..self.logical_pages {
            let lpn = Lpn::new(l);
            match ftl.lookup(lpn) {
                Some(ppn) => {
                    if self.l2p[l as usize] == UNMAPPED {
                        self.write_seq += 1;
                        self.token[l as usize] = mix(l ^ mix(self.write_seq));
                    }
                    self.l2p[l as usize] = ppn.raw();
                    self.phys.insert(ppn.raw(), (l, self.token[l as usize]));
                }
                None => {
                    self.l2p[l as usize] = UNMAPPED;
                    self.token[l as usize] = 0;
                }
            }
        }
        self.last_erase_counts = ftl.blocks().erase_counts();
    }

    /// Records a host write of `lpn` onto `ppn`, assigning a fresh content
    /// token. Fires if `ppn` is still the live home of a *different* LPN —
    /// a double allocation the mapping table itself might miss.
    pub fn note_host_write(&mut self, lpn: Lpn, ppn: Ppn, at: SimTime) {
        let l = lpn.raw() as usize;
        if let Some(&(owner, _)) = self.phys.get(&ppn.raw()) {
            if owner != lpn.raw() && self.l2p[owner as usize] == ppn.raw() {
                self.log.report(
                    "write-double-alloc",
                    at,
                    format!("{ppn} written for {lpn} but still live for lpn{owner}"),
                );
            }
        }
        let old = self.l2p[l];
        if old != UNMAPPED {
            self.phys.remove(&old);
        }
        self.write_seq += 1;
        let token = mix(lpn.raw() ^ mix(self.write_seq));
        self.l2p[l] = ppn.raw();
        self.token[l] = token;
        self.writes[l] += 1;
        self.phys.insert(ppn.raw(), (lpn.raw(), token));
    }

    /// Cross-checks a host read at issue time: the translation the real FTL
    /// produced (`ppn`, `None` = unmapped) must match the shadow map, and
    /// the physical page must still hold the content token of `lpn`'s last
    /// write — anything else is data served from the wrong place.
    pub fn check_host_read(&mut self, lpn: Lpn, ppn: Option<Ppn>, at: SimTime) {
        self.checks += 1;
        let shadow = self.l2p[lpn.raw() as usize];
        match ppn {
            None if shadow == UNMAPPED => {}
            None => self.log.report(
                "read-mapping",
                at,
                format!("{lpn} read as unmapped but shadow maps it to ppn{shadow}"),
            ),
            Some(p) if shadow == UNMAPPED => self.log.report(
                "read-mapping",
                at,
                format!("never-written {lpn} served from {p}"),
            ),
            Some(p) if p.raw() != shadow => self.log.report(
                "read-mapping",
                at,
                format!("{lpn} served from {p} but shadow maps it to ppn{shadow}"),
            ),
            Some(p) => match self.phys.get(&p.raw()) {
                Some(&(owner, tok))
                    if owner == lpn.raw() && tok == self.token[lpn.raw() as usize] => {}
                Some(&(owner, _)) => self.log.report(
                    "read-content",
                    at,
                    format!("{p} read for {lpn} but holds lpn{owner}'s data"),
                ),
                None => self.log.report(
                    "read-content",
                    at,
                    format!("{p} read for {lpn} but the shadow has no content there"),
                ),
            },
        }
    }

    /// Records a GC relocation: the source must be the shadow's current home
    /// of the LPN (else the collector copied a stale page), and the content
    /// token travels unchanged to the destination.
    pub fn note_relocation(&mut self, rel: Relocation, at: SimTime) {
        let l = rel.lpn.raw() as usize;
        if self.l2p[l] != rel.src.raw() {
            let shadow = self.l2p[l];
            self.log.report(
                "relocation-source",
                at,
                format!(
                    "{} relocated from {} but shadow maps it to ppn{shadow}",
                    rel.lpn, rel.src
                ),
            );
        }
        self.phys.remove(&self.l2p[l]);
        self.l2p[l] = rel.dst.raw();
        self.phys
            .insert(rel.dst.raw(), (rel.lpn.raw(), self.token[l]));
    }

    /// Checks and records a block erase: no page of `pbn` may still be the
    /// shadow's live home of any LPN — GC must have relocated everything.
    /// The block's shadow content is purged either way.
    pub fn note_erase(&mut self, pbn: Pbn, at: SimTime) {
        self.check_block_gone(pbn, "erase-live-page", at);
    }

    /// Same check as [`Oracle::note_erase`], for a block retired (grown
    /// bad) instead of freed.
    pub fn note_retire(&mut self, pbn: Pbn, at: SimTime) {
        self.check_block_gone(pbn, "retire-live-page", at);
    }

    fn check_block_gone(&mut self, pbn: Pbn, invariant: &'static str, at: SimTime) {
        self.checks += 1;
        for ppn in self.geometry.block_ppns(pbn) {
            if let Some(&(owner, _)) = self.phys.get(&ppn.raw()) {
                if self.l2p[owner as usize] == ppn.raw() {
                    self.log.report(
                        invariant,
                        at,
                        format!("{pbn} wiped {ppn}, still live for lpn{owner}"),
                    );
                    self.l2p[owner as usize] = UNMAPPED;
                }
            }
            self.phys.remove(&ppn.raw());
        }
    }

    /// Conservation sweep over the real FTL: structural block/mapping
    /// invariants, per-plane page conservation, and erase-count
    /// monotonicity against the previous sweep's snapshot.
    pub fn check_invariants(&mut self, ftl: &Ftl, at: SimTime) {
        self.checks += 1;
        for problem in ftl.check_invariants() {
            self.log.report("ftl-structural", at, problem);
        }
        let counts = ftl.blocks().erase_counts();
        for (raw, (&now, &before)) in counts.iter().zip(&self.last_erase_counts).enumerate() {
            if now < before {
                self.log.report(
                    "erase-count-monotone",
                    at,
                    format!(
                        "{} erase count fell from {before} to {now}",
                        Pbn::new(raw as u64)
                    ),
                );
            }
        }
        self.last_erase_counts = counts;
    }

    /// End-of-run sweep: every LPN's real translation must equal the shadow
    /// map, plus a final conservation sweep.
    pub fn final_check(&mut self, ftl: &Ftl, at: SimTime) {
        self.check_invariants(ftl, at);
        self.checks += 1;
        for l in 0..self.logical_pages {
            let lpn = Lpn::new(l);
            let real = ftl.lookup(lpn).map(Ppn::raw).unwrap_or(UNMAPPED);
            let shadow = self.l2p[l as usize];
            if real != shadow {
                self.log.report(
                    "final-mapping",
                    at,
                    format!("{lpn}: ftl says {real}, shadow says {shadow} (raw ppn)"),
                );
            }
        }
    }

    /// Hash of the final functional state — per-LPN write counts and
    /// mapped-ness, folded in LPN order. Timing, placement, and commit
    /// interleaving between *different* LPNs do not enter, so packetized
    /// and dedicated backends driving the same logical workload must agree.
    pub fn functional_digest(&self) -> u64 {
        let mut h = mix(self.logical_pages);
        for l in 0..self.logical_pages as usize {
            let mapped = (self.l2p[l] != UNMAPPED) as u64;
            if self.writes[l] != 0 || mapped != 0 {
                h = mix(h ^ mix(l as u64) ^ mix(self.writes[l].wrapping_mul(3)) ^ mapped);
            }
        }
        h
    }

    /// Serializes the shadow model: page maps, content tokens, write
    /// counters, physical shadow content (sorted by raw PPN for
    /// determinism), the erase-count snapshot, and the violation log.
    /// Geometry and logical-page count are not written — restore targets an
    /// [`Oracle::new`]-built instance of the same shape.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        ckpt::put_u64_slice(w, &self.l2p);
        ckpt::put_u64_slice(w, &self.token);
        ckpt::put_u64_slice(w, &self.writes);
        let mut phys: Vec<(u64, (u64, u64))> = self.phys.iter().map(|(&k, &v)| (k, v)).collect();
        phys.sort_unstable_by_key(|&(k, _)| k);
        w.put_usize(phys.len());
        for (ppn, (lpn, tok)) in phys {
            w.put_u64(ppn);
            w.put_u64(lpn);
            w.put_u64(tok);
        }
        w.put_usize(self.last_erase_counts.len());
        for &c in &self.last_erase_counts {
            w.put_u32(c);
        }
        w.put_u64(self.write_seq);
        w.put_u64(self.checks);
        self.log.ckpt_save(w);
    }

    /// Restores state saved by [`Oracle::ckpt_save`] into a shadow model of
    /// the same geometry.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a dimension mismatch, or physical
    /// shadow entries referencing out-of-range pages.
    pub fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let logical = self.logical_pages as usize;
        let l2p = ckpt::take_u64_vec_exact(r, logical, "oracle l2p")?;
        let token = ckpt::take_u64_vec_exact(r, logical, "oracle tokens")?;
        let writes = ckpt::take_u64_vec_exact(r, logical, "oracle write counts")?;
        let page_count = self.geometry.page_count();
        let n = r.take_count(24)?;
        let mut phys = HashMap::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let ppn = r.take_u64()?;
            let lpn = r.take_u64()?;
            let tok = r.take_u64()?;
            if ppn >= page_count {
                return Err(CkptError::Invalid(format!(
                    "oracle shadow ppn{ppn} beyond device capacity {page_count}"
                )));
            }
            if lpn >= self.logical_pages {
                return Err(CkptError::Invalid(format!(
                    "oracle shadow owner lpn{lpn} beyond logical space {}",
                    self.logical_pages
                )));
            }
            if prev.is_some_and(|p| p >= ppn) {
                return Err(CkptError::Invalid(
                    "oracle shadow pages not strictly sorted".into(),
                ));
            }
            prev = Some(ppn);
            phys.insert(ppn, (lpn, tok));
        }
        let blocks = r.take_count(4)?;
        if blocks != self.last_erase_counts.len() {
            return Err(CkptError::Invalid(format!(
                "oracle erase snapshot for {blocks} blocks, device has {}",
                self.last_erase_counts.len()
            )));
        }
        let mut last_erase_counts = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            last_erase_counts.push(r.take_u32()?);
        }
        let write_seq = r.take_u64()?;
        let checks = r.take_u64()?;
        let log = ViolationLog::ckpt_load(r)?;
        self.l2p = l2p;
        self.token = token;
        self.writes = writes;
        self.phys = phys;
        self.last_erase_counts = last_erase_counts;
        self.write_seq = write_seq;
        self.checks = checks;
        self.log = log;
        Ok(())
    }

    /// The violation log accumulated so far.
    pub fn violations(&self) -> &ViolationLog {
        &self.log
    }

    /// Cross-checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Condenses the oracle's observations for the run report.
    pub fn summary(&self) -> OracleSummary {
        OracleSummary {
            enabled: true,
            checks: self.checks,
            violations: self.log.render(),
            functional_digest: self.functional_digest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nssd_ftl::{FtlConfig, WayMask};
    use nssd_sim::DetRng;

    fn tiny_pair() -> (Ftl, Oracle) {
        let mut cfg = FtlConfig::evaluation_defaults();
        cfg.geometry = Geometry::tiny();
        cfg.gc.victims_per_trigger = 2;
        let ftl = Ftl::new(cfg).unwrap();
        let oracle = Oracle::new(*ftl.geometry(), ftl.logical_pages());
        (ftl, oracle)
    }

    #[test]
    fn clean_write_read_cycle_has_no_violations() {
        let (mut ftl, mut oracle) = tiny_pair();
        for l in 0..32 {
            let out = ftl.write(Lpn::new(l)).unwrap();
            oracle.note_host_write(Lpn::new(l), out.ppn, SimTime::from_ns(l));
        }
        for l in 0..40 {
            let lpn = Lpn::new(l);
            oracle.check_host_read(lpn, ftl.lookup(lpn), SimTime::from_ns(100 + l));
        }
        oracle.final_check(&ftl, SimTime::from_ns(1000));
        assert!(oracle.violations().is_empty(), "{:?}", oracle.violations());
        assert!(oracle.checks() > 40);
    }

    #[test]
    fn lockstep_gc_stays_clean() {
        let (mut ftl, mut oracle) = tiny_pair();
        let mut rng = DetRng::seed_from_u64(5);
        let logical = ftl.logical_pages();
        let mut t = 0u64;
        // Overwrite churn until GC has run several times, all observed.
        for i in 0..logical * 4 {
            let lpn = Lpn::new(i % (logical / 2).max(1));
            if ftl.needs_gc() {
                let mut reloc_notes = Vec::new();
                let mut erase_notes = Vec::new();
                ftl.instant_gc_with(&mut rng, &mut |rel| reloc_notes.push(rel), &mut |pbn| {
                    erase_notes.push(pbn)
                })
                .unwrap();
                // Hooks preserve FTL order: relocations of a victim land
                // before its erase, and victims finish one at a time, so
                // replaying grouped-by-kind is only safe per trigger when
                // each erase's copies are all in `reloc_notes` — which
                // instant_gc guarantees (it fully drains a victim first).
                for rel in reloc_notes {
                    oracle.note_relocation(rel, SimTime::from_ns(t));
                }
                for pbn in erase_notes {
                    oracle.note_erase(pbn, SimTime::from_ns(t));
                }
            }
            let out = ftl.write(lpn).unwrap();
            oracle.note_host_write(lpn, out.ppn, SimTime::from_ns(t));
            t += 1;
        }
        oracle.check_invariants(&ftl, SimTime::from_ns(t));
        oracle.final_check(&ftl, SimTime::from_ns(t));
        assert!(ftl.stats().erases > 0, "churn never triggered GC");
        assert!(oracle.violations().is_empty(), "{:?}", oracle.violations());
    }

    #[test]
    fn swapped_mapping_fires_read_check() {
        let (mut ftl, mut oracle) = tiny_pair();
        for l in 0..2 {
            let out = ftl.write(Lpn::new(l)).unwrap();
            oracle.note_host_write(Lpn::new(l), out.ppn, SimTime::ZERO);
        }
        ftl.debug_swap_mapping(Lpn::new(0), Lpn::new(1));
        // The FTL's own structural check cannot see the corruption...
        assert!(ftl.check_consistency());
        // ...the shadow model can.
        oracle.check_host_read(Lpn::new(0), ftl.lookup(Lpn::new(0)), SimTime::from_ns(1));
        assert_eq!(oracle.violations().len(), 1);
        assert_eq!(
            oracle.violations().iter().next().unwrap().invariant,
            "read-mapping"
        );
    }

    #[test]
    fn dropped_gc_copy_fires_on_erase_and_read() {
        let (mut ftl, mut oracle) = tiny_pair();
        let out = ftl.write(Lpn::new(7)).unwrap();
        oracle.note_host_write(Lpn::new(7), out.ppn, SimTime::ZERO);
        // GC moves the page for real, but the observation is "lost" — the
        // copy never happened as far as the shadow knows.
        let all = WayMask::all(ftl.geometry().ways);
        let rel = ftl.relocate(Lpn::new(7), out.ppn, all).unwrap().unwrap();
        let victim = ftl.geometry().pbn_of(rel.src);
        ftl.erase_block(victim);
        oracle.note_erase(victim, SimTime::from_ns(1));
        let erase_fired = oracle.violations().len();
        assert_eq!(erase_fired, 1, "{:?}", oracle.violations());
        assert_eq!(
            oracle.violations().iter().next().unwrap().invariant,
            "erase-live-page"
        );
        // And the next read of the LPN cannot check out either.
        oracle.check_host_read(Lpn::new(7), ftl.lookup(Lpn::new(7)), SimTime::from_ns(2));
        assert!(oracle.violations().len() > erase_fired);
    }

    #[test]
    fn sync_from_ftl_adopts_preconditioned_state() {
        let (mut ftl, mut oracle) = tiny_pair();
        let mut rng = DetRng::seed_from_u64(11);
        ftl.precondition(0.8, 0.4, &mut rng).unwrap();
        oracle.sync_from_ftl(&ftl);
        for l in 0..ftl.logical_pages() {
            let lpn = Lpn::new(l);
            oracle.check_host_read(lpn, ftl.lookup(lpn), SimTime::ZERO);
        }
        oracle.final_check(&ftl, SimTime::from_ns(1));
        assert!(oracle.violations().is_empty(), "{:?}", oracle.violations());
    }

    #[test]
    fn functional_digest_ignores_placement_but_not_content() {
        let (mut a, mut oa) = tiny_pair();
        let (mut b, mut ob) = tiny_pair();
        // Same logical writes, different physical interleaving: b writes a
        // decoy first and trims it, so placements diverge.
        let decoy = Lpn::new(50);
        let d = b.write(decoy).unwrap();
        ob.note_host_write(decoy, d.ppn, SimTime::ZERO);
        for l in 0..16 {
            let wa = a.write(Lpn::new(l)).unwrap();
            oa.note_host_write(Lpn::new(l), wa.ppn, SimTime::ZERO);
            let wb = b.write(Lpn::new(l)).unwrap();
            ob.note_host_write(Lpn::new(l), wb.ppn, SimTime::ZERO);
        }
        // Digests differ while the decoy is extant...
        assert_ne!(oa.functional_digest(), ob.functional_digest());
        // ...and still differ after trim (write counts are part of history).
        b.trim(decoy).unwrap();
        ob.l2p[decoy.raw() as usize] = UNMAPPED;
        assert_ne!(oa.functional_digest(), ob.functional_digest());
        // Identical histories agree despite different physical placement.
        let (mut c, mut oc) = tiny_pair();
        // c shifts its physical placement with an unobserved scratch write.
        c.write(Lpn::new(99)).unwrap();
        c.trim(Lpn::new(99)).unwrap();
        for l in 0..16 {
            let wc = c.write(Lpn::new(l)).unwrap();
            oc.note_host_write(Lpn::new(l), wc.ppn, SimTime::ZERO);
        }
        assert_eq!(oa.functional_digest(), oc.functional_digest());
    }

    #[test]
    fn summary_reports_enabled_checks_and_digest() {
        let (mut ftl, mut oracle) = tiny_pair();
        let out = ftl.write(Lpn::new(0)).unwrap();
        oracle.note_host_write(Lpn::new(0), out.ppn, SimTime::ZERO);
        oracle.check_host_read(Lpn::new(0), ftl.lookup(Lpn::new(0)), SimTime::ZERO);
        let s = oracle.summary();
        assert!(s.enabled);
        assert_eq!(s.checks, 1);
        assert!(s.violations.is_empty());
        assert_eq!(s.functional_digest, oracle.functional_digest());
        assert_ne!(s, OracleSummary::default());
    }
}
