//! # networked-ssd
//!
//! A from-scratch Rust reproduction of *"Networked SSD: Flash Memory
//! Interconnection Network for High-Bandwidth SSD"* (Kim, Kang, Park, Kim —
//! MICRO 2022): the packetized flash interface (**pSSD**), the Omnibus 2D
//! bus topology with flash-to-flash connectivity (**pnSSD**), and
//! **spatial garbage collection**, built on a complete discrete-event SSD
//! simulator substrate (flash model, interconnect models, FTL, host
//! interface, workload suite).
//!
//! This crate is the facade: it re-exports every workspace crate under one
//! name. Depend on the individual `nssd-*` crates instead if you only need
//! one layer.
//!
//! ## Quick start
//!
//! ```
//! use networked_ssd::core::{run_trace, Architecture, SsdConfig};
//! use networked_ssd::workloads::PaperWorkload;
//!
//! // Compare the conventional bus against the packetized-network SSD.
//! let cfg = SsdConfig::tiny(Architecture::BaseSsd);
//! let trace = PaperWorkload::WebSearch0.generate(200, cfg.logical_bytes() / 2, 1);
//!
//! let base = run_trace(cfg, &trace)?;
//! let pnssd = run_trace(SsdConfig::tiny(Architecture::PnSsdSplit), &trace)?;
//!
//! println!(
//!     "baseSSD {} vs pnSSD(+split) {} → {:.2}x",
//!     base.all.mean,
//!     pnssd.all.mean,
//!     pnssd.speedup_vs(&base),
//! );
//! # Ok::<(), String>(())
//! ```
//!
//! ## Layer map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `nssd-sim` | Discrete-event kernel, resources, statistics |
//! | [`flash`] | `nssd-flash` | Geometry, timing, commands, chip model |
//! | [`interconnect`] | `nssd-interconnect` | Packets, buses, Omnibus, NoSSD mesh |
//! | [`ftl`] | `nssd-ftl` | Mapping, allocation, victim selection, GC policies |
//! | [`host`] | `nssd-host` | Requests, host-side bandwidth pipes |
//! | [`workloads`] | `nssd-workloads` | Traces, Zipf, synthetic + named suites |
//! | [`faults`] | `nssd-faults` | Deterministic fault injection, reliability counters |
//! | [`oracle`] | `nssd-oracle` | Timing-free shadow model, conservation invariants |
//! | [`core`] | `nssd-core` | Architectures, engine, runners, reports, golden snapshots |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nssd_core as core;
pub use nssd_faults as faults;
pub use nssd_flash as flash;
pub use nssd_ftl as ftl;
pub use nssd_host as host;
pub use nssd_interconnect as interconnect;
pub use nssd_oracle as oracle;
pub use nssd_sim as sim;
pub use nssd_workloads as workloads;

// The most-used items, flattened for convenience.
pub use nssd_core::{
    run_closed_loop, run_closed_loop_preconditioned, run_tenants, run_tenants_preconditioned,
    run_trace, run_trace_preconditioned, Architecture, FaultConfig, GoldenCase, OracleSummary,
    ReliabilityStats, SchedulerKind, SimReport, SloClass, SsdConfig, TenantConfig, TenantSummary,
};
pub use nssd_ftl::{
    GcPlan, GcPlanSpec, GcPolicy, PlacementSpec, PreemptionSpec, TriggerSpec, VictimSpec,
};
pub use nssd_workloads::{
    MixedSpec, PaperWorkload, SyntheticPattern, SyntheticSpec, TenantMix, TenantSpec,
    TenantWorkload, Trace,
};
