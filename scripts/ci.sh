#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> golden snapshot gate"
# The golden_report suite re-runs the pinned matrix and compares byte-for-byte
# against tests/golden/; the git check catches a bless that was never committed.
cargo test --release -q --test golden_report
git diff --exit-code -- tests/golden

echo "==> oracle mutation self-test"
# Plants a corrupted mapping entry and a dropped GC copy; the shadow oracle
# must flag both, or the invariant layer has gone blind.
cargo test --release -q --test oracle

echo "CI gate passed."
