#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> golden snapshot gate"
# The golden_report suite re-runs the pinned matrix and compares byte-for-byte
# against tests/golden/; the git check catches a bless that was never committed.
cargo test --release -q --test golden_report
git diff --exit-code -- tests/golden

echo "==> perf harness smoke"
# A tiny pinned run of the perf harness: proves the bin works end-to-end,
# that parallel output is byte-identical to serial (the bin asserts it),
# and that BENCH.json comes out well-formed.
NSSD_PERF_REQUESTS=300 NSSD_JOBS=2 cargo run --release -q -p nssd-bench --bin perf
python3 -c "import json; d=json.load(open('BENCH.json')); assert d['schema']=='nssd-bench-perf/1' and d['cells'] and d['speedup']>0, d" \
  || { echo "BENCH.json malformed"; exit 1; }

echo "==> oracle mutation self-test"
# Plants a corrupted mapping entry and a dropped GC copy; the shadow oracle
# must flag both, or the invariant layer has gone blind.
cargo test --release -q --test oracle

echo "CI gate passed."
