#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --release -q

echo "CI gate passed."
