#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --release -q

echo "==> golden snapshot gate"
# The golden_report suite re-runs the pinned matrix and compares byte-for-byte
# against tests/golden/; the git check catches a bless that was never committed.
cargo test --release -q --test golden_report
git diff --exit-code -- tests/golden

echo "==> perf harness smoke + regression gate"
# A pinned --smoke run of the perf harness: proves the bin works end-to-end,
# that parallel output is byte-identical to serial (the bin asserts it), and
# that the measurement schema is intact. The gate then asserts (a) the queue
# microbench section exists with a steady-state allocation-free hot loop,
# and (b) a sanity floor on per-cell events/sec — a catastrophic event-core
# regression (orders of magnitude, not noise) fails the build. Smoke writes
# target/BENCH.smoke.json; the committed BENCH.json baseline is untouched.
NSSD_JOBS=2 cargo run --release -q -p nssd-bench --bin perf -- --smoke
python3 - <<'EOF'
import json
d = json.load(open('target/BENCH.smoke.json'))
assert d['schema'] == 'nssd-bench-perf/2' and d['cells'], d
assert d['detected_cpus'] >= 1, d
assert (d['speedup'] is None) == (not d['speedup_comparable']), d
if d['speedup'] is not None:
    assert d['speedup'] > 0, d
# The committed baseline must have been found and compared against.
assert d['baseline'] is not None, 'committed BENCH.json baseline missing'
# Queue microbench: present, and the steady-state hot loop allocation-free.
q = d['queue']
for key in ('ops', 'dense_schedule_pop_mops', 'same_tick_burst_mops',
            'far_future_mix_mops', 'steady_state_allocs_per_op'):
    assert key in q, (key, q)
assert q['steady_state_allocs_per_op'] < 0.01, q
assert q['dense_schedule_pop_mops'] > 1.0, q
# Per-cell: events/sec floor (CI machines are slow, the floor is coarse)
# and the allocation counter wired up.
for cell in d['cells']:
    assert cell['events_per_sec'] > 200_000, cell
    assert 'allocs_per_event' in cell, cell
EOF

echo "==> tenant interference smoke"
# A small run of the multi-tenant matrix: exercises the NVMe-style frontend,
# all three schedulers, and the per-tenant report path end-to-end.
NSSD_TENANT_REQUESTS=200 cargo run --release -q -p nssd-bench --bin tenants

echo "==> endurance lifetime smoke"
# A short segmented endurance run per architecture: exercises checkpoint
# save/resume at every segment boundary (the bin asserts save∘resume is
# byte-identical), wear accounting, and the windowed tail estimator, and
# leaves target/lifetime.json as a build artifact.
cargo run --release -q -p nssd-bench --bin lifetime -- --smoke
python3 - <<'EOF'
import json
d = json.load(open('target/lifetime.json'))
assert d['experiment'] == 'lifetime', d
assert len(d['architectures']) == 4, d
for arch in d['architectures']:
    assert arch['segments'], arch['architecture']
    for seg in arch['segments']:
        assert seg['ckpt_bytes'] > 0 and seg['completed'] > 0, seg
EOF

echo "==> GC plan ablation smoke"
# A small run of the composed-plan grid (victim x placement x preemption on
# pnSSD+split): exercises every component combination end-to-end, including
# the cross-compositions no legacy policy covers, and leaves
# target/plans.json as a build artifact.
cargo run --release -q -p nssd-bench --bin plans -- --smoke
python3 - <<'EOF'
import json
d = json.load(open('target/plans.json'))
assert d['experiment'] == 'plan_ablation', d
assert len(d['plans']) == 12, d
names = {p['plan'] for p in d['plans']}
assert len(names) == 12, names
for p in d['plans']:
    assert p['gc_events'] > 0 and p['mean_us'] > 0, p
EOF

echo "==> degraded-mode rebuild smoke"
# Parity redundancy under a fail-stop chip failure on every fabric family:
# exercises the degraded-read reconstruction path, the fabric-routed
# background rebuild, and the zero-data-loss accounting end-to-end, and
# leaves target/rebuild.json as a build artifact.
cargo run --release -q -p nssd-bench --bin rebuild -- --smoke
python3 - <<'EOF'
import json
d = json.load(open('target/rebuild.json'))
assert d['experiment'] == 'rebuild', d
assert len(d['runs']) == 4, d
for r in d['runs']:
    # The failure stranded live data and reconstruction served it.
    assert r['pages_degraded'] > 0 and r['reconstructed_reads'] > 0, r
    assert r['degraded_p99_us'] is not None and r['degraded_p99_us'] > 0, r
    # The rebuild re-protected the device within the run: every cell
    # reports a completed rebuild and zero lost pages.
    assert r['rebuild_pages'] > 0 and r['rebuild_time_us'] is not None, r
    assert r['pages_lost'] == 0 and r['host_io_errors'] == 0, r
EOF

echo "==> oracle mutation self-test"
# Plants a corrupted mapping entry and a dropped GC copy; the shadow oracle
# must flag both, or the invariant layer has gone blind.
cargo test --release -q --test oracle

echo "CI gate passed."
