//! Trace round-trip: generate a workload, save it in the plain-text trace
//! format, reload it, and replay it — the workflow for bringing your own
//! block traces to the simulator.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use networked_ssd::{run_trace, Architecture, GcPolicy, PaperWorkload, SsdConfig, Trace};

fn main() -> Result<(), String> {
    let mut cfg = SsdConfig::new(Architecture::PSsd);
    cfg.gc.policy = GcPolicy::None;

    // 1. Generate (or bring your own `<ns> <R|W> <offset> <len>` file).
    let original = PaperWorkload::WebSearch0.generate(5_000, cfg.logical_bytes() / 4, 11);

    // 2. Serialize to the text format.
    let text = original.to_text();
    println!(
        "serialized {} records ({} bytes); first lines:",
        original.len(),
        text.len()
    );
    for line in text.lines().take(4) {
        println!("  {line}");
    }

    // 3. Reload and verify.
    let reloaded: Trace = text.parse().map_err(|e| format!("parse: {e}"))?;
    assert_eq!(reloaded, original, "text round-trip must be lossless");

    // 4. Replay.
    let report = run_trace(cfg, &reloaded)?;
    println!("\nreplay on pSSD:\n{report}");
    Ok(())
}
