//! Importing a real-world trace: parse MSR Cambridge CSV, characterize it,
//! wrap it into the device's logical space, and replay it on two
//! architectures.
//!
//! ```sh
//! cargo run --release --example msr_import            # embedded sample
//! cargo run --release --example msr_import -- my.csv  # your trace file
//! ```

use networked_ssd::workloads::{import_msr, MsrImportOptions, TraceStats};
use networked_ssd::{run_trace, Architecture, GcPolicy, SsdConfig};

/// A miniature MSR-format snippet (the real collection's `usr_0` volume
/// has millions of rows in exactly this shape).
const SAMPLE: &str = "\
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372003106702,usr,0,Read,7014634496,8192,12651
128166372003231868,usr,0,Write,2517421568,4096,1052
128166372003413130,usr,0,Read,95764480,16384,11268
128166372003492381,usr,0,Write,2517425664,4096,998
128166372003693120,usr,0,Read,95780864,32768,24998
128166372004012447,usr,0,Write,4096,8192,1163
128166372004319984,usr,0,Read,7014642688,65536,50821
128166372004671472,usr,0,Write,2517429760,12288,2215
128166372005021109,usr,0,Read,95813632,16384,12020";

fn main() -> Result<(), String> {
    let mut cfg = SsdConfig::new(Architecture::BaseSsd);
    cfg.gc.policy = GcPolicy::None;

    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?,
        None => SAMPLE.to_string(),
    };

    // Wrap raw volume offsets into the simulated device's logical space.
    let trace = import_msr(
        &text,
        "msr-usr-0",
        MsrImportOptions {
            disk: Some(0),
            wrap_bytes: Some(cfg.logical_bytes() / 2),
            max_records: Some(100_000),
        },
    )
    .map_err(|e| format!("import: {e}"))?;

    println!(
        "imported `{}`:\n{}\n",
        trace.name(),
        TraceStats::measure(&trace)
    );

    let base = run_trace(cfg, &trace)?;
    let mut pn_cfg = SsdConfig::new(Architecture::PnSsdSplit);
    pn_cfg.gc.policy = GcPolicy::None;
    let pnssd = run_trace(pn_cfg, &trace)?;

    println!(
        "baseSSD:        mean {}  p99 {}",
        base.all.mean, base.all.p99
    );
    println!(
        "pnSSD (+split): mean {}  p99 {}",
        pnssd.all.mean, pnssd.all.p99
    );
    println!("speedup: {:.2}x", pnssd.speedup_vs(&base));
    Ok(())
}
