//! Interconnect anatomy: inspect the timing and topology models directly —
//! packet layouts, bus occupancies, Omnibus ownership, mesh routes — without
//! running a simulation.
//!
//! ```sh
//! cargo run --example topology_explorer
//! ```

use networked_ssd::flash::FlashCommand;
use networked_ssd::interconnect::{
    signals, BusParams, ControlPacket, DataPacket, DedicatedBus, Mesh, MeshEndpoint, Omnibus,
    PacketBus,
};

fn main() {
    println!("== pin budget (Table I) ==");
    println!(
        "{} pins total; {} payload (DQ); packetization repurposes {} control pins",
        signals::total_pins(),
        signals::conventional_payload_pins(),
        signals::pins_freed_by_packetization()
    );

    println!("\n== a 16KB page read on the wire (Fig 6) ==");
    let base = DedicatedBus::new(BusParams::table2_baseline());
    let pssd = PacketBus::new(BusParams::table2_pssd());
    println!(
        "conventional: {} cmd+addr, {} data  -> {} occupancy",
        base.command_phase(FlashCommand::ReadPage),
        base.data_phase(16 * 1024),
        base.read_occupancy(16 * 1024)
    );
    let ctrl = ControlPacket::for_command(FlashCommand::ReadPage);
    let data = DataPacket::new(16 * 1024);
    println!(
        "packetized:   control packet {} flits (header {:#04x}), data packet {} flits -> {} occupancy",
        ctrl.flits(),
        ctrl.encode_header().expect("encodable"),
        data.flits(),
        pssd.control_packet_time(FlashCommand::ReadPage) + pssd.read_out_time(16 * 1024)
    );

    println!("\n== Omnibus ownership (Fig 9c/11) ==");
    let omni = Omnibus::new(8, 8, 8);
    for way in [0u32, 3, 7] {
        println!(
            "chip column {way}: v-channel {} owned by controller {}",
            omni.v_channel_of_way(way),
            omni.controller_of_v_channel(omni.v_channel_of_way(way))
        );
    }
    println!(
        "f2f copy c2->c3 over v0 needs {} control-plane messages (intermediate case, Fig 11c)",
        omni.f2f_handshake_messages(2, 3, 0)
    );

    println!("\n== NoSSD mesh routes (XY) ==");
    let mesh = Mesh::new(8, 8);
    for (src, dst, label) in [
        (
            MeshEndpoint::Controller(0),
            MeshEndpoint::Chip { row: 7, col: 0 },
            "own column",
        ),
        (
            MeshEndpoint::Controller(0),
            MeshEndpoint::Chip { row: 7, col: 7 },
            "far corner",
        ),
        (
            MeshEndpoint::Chip { row: 3, col: 1 },
            MeshEndpoint::Chip { row: 5, col: 6 },
            "chip-to-chip (GC copy)",
        ),
    ] {
        println!("{label}: {} hops", mesh.hops(src, dst));
    }
}
