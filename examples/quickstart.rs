//! Quickstart: simulate one workload on the conventional SSD and on the
//! paper's packetized-network SSD, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use networked_ssd::{run_trace, Architecture, GcPolicy, PaperWorkload, SsdConfig};

fn main() -> Result<(), String> {
    // A capacity-scaled device with the paper's 8-channel × 8-way topology.
    let mut base_cfg = SsdConfig::new(Architecture::BaseSsd);
    base_cfg.gc.policy = GcPolicy::None; // pure interconnect comparison

    // 20k requests of a mail-server-like trace over half the device.
    let trace = PaperWorkload::Exchange1.generate(20_000, base_cfg.logical_bytes() / 2, 42);
    println!(
        "workload: {} ({} requests, {:.0}% reads)",
        trace.name(),
        trace.len(),
        trace.read_fraction() * 100.0
    );

    let base = run_trace(base_cfg, &trace)?;
    println!("\nbaseSSD:\n{base}");

    let mut pn_cfg = SsdConfig::new(Architecture::PnSsdSplit);
    pn_cfg.gc.policy = GcPolicy::None;
    let pnssd = run_trace(pn_cfg, &trace)?;
    println!("pnSSD (+split):\n{pnssd}");

    println!(
        "pnSSD(+split) speedup over baseSSD: {:.2}x (paper Fig 14: ~1.8x on average)",
        pnssd.speedup_vs(&base)
    );
    Ok(())
}
