//! Path diversity under imbalanced placement: reproduce the Fig 17 effect
//! where Omnibus routing absorbs a skewed page-allocation policy.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use networked_ssd::ftl::AllocPolicy;
use networked_ssd::{
    run_closed_loop, Architecture, GcPolicy, SsdConfig, SyntheticPattern, SyntheticSpec,
};

fn main() -> Result<(), String> {
    println!("sequential reads, 64KB each, 16 concurrent — by placement policy:\n");
    println!(
        "{:<24} {:>14} {:>14}",
        "architecture", "PCWD (balanced)", "PWCD (skewed)"
    );
    for arch in [
        Architecture::BaseSsd,
        Architecture::PSsd,
        Architecture::PnSsd,
        Architecture::PnSsdSplit,
    ] {
        let mut row = format!("{:<24}", arch.label());
        for policy in [AllocPolicy::Pcwd, AllocPolicy::Pwcd] {
            let mut cfg = SsdConfig::new(arch);
            cfg.gc.policy = GcPolicy::None;
            cfg.alloc_policy = policy;
            let spec = SyntheticSpec::paper(
                SyntheticPattern::SequentialRead,
                4_000,
                cfg.logical_bytes() / 2,
            );
            let report = run_closed_loop(cfg, spec.generate(), 16)?;
            row += &format!(" {:>14}", report.all.mean.to_string());
        }
        println!("{row}");
    }
    println!(
        "\nPWCD piles consecutive pages onto one channel's ways; pSSD still queues on\n\
         that hot channel, while pnSSD routes the overflow through the v-channels\n\
         (greedy adaptive choice + page split) — the paper's Fig 16/17 contrast."
    );
    Ok(())
}
