//! Spatial garbage collection in action: precondition a device until GC
//! must run, then compare the three reclamation policies on pnSSD.
//!
//! ```sh
//! cargo run --release --example spatial_gc
//! ```

use networked_ssd::{run_trace_preconditioned, Architecture, GcPolicy, PaperWorkload, SsdConfig};

fn main() -> Result<(), String> {
    let policies = [GcPolicy::Parallel, GcPolicy::Preemptive, GcPolicy::Spatial];
    println!("pnSSD(+split) under write pressure, rocksdb-0, preconditioned to the GC trigger:\n");

    let mut baseline_mean = None;
    for policy in policies {
        let mut cfg = SsdConfig::gc_scaled(Architecture::PnSsdSplit);
        cfg.gc.policy = policy;
        let trace = PaperWorkload::RocksDb0.generate(8_000, cfg.logical_bytes() / 2, 7);
        // 85% full with 0.3×logical random overwrites, then pushed to the
        // trigger watermark so GC runs throughout the measurement.
        let report = run_trace_preconditioned(cfg, &trace, 0.85, 0.3)?;
        let mean = report.all.mean;
        let vs = baseline_mean
            .map(|b: networked_ssd::sim::SimTime| {
                format!("{:.2}x vs PaGC", b.as_ns() as f64 / mean.as_ns() as f64)
            })
            .unwrap_or_else(|| "baseline".into());
        if baseline_mean.is_none() {
            baseline_mean = Some(mean);
        }
        println!(
            "{policy:<12} mean={mean}  p99={}  gc-events={}  pages-copied={}  ({vs})",
            report.all.p99, report.gc.events, report.gc.pages_copied
        );
    }
    println!(
        "\nSpatial GC (paper §VI) confines reclamation to the GC group's chips and\n\
         v-channels while the I/O group keeps serving the host — the interference\n\
         reduction above is the paper's Fig 19 effect."
    );
    Ok(())
}
